package rt

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/oa"
	"repro/internal/wire"
)

// ErrTimeout reports that no reply arrived within the wait deadline.
var ErrTimeout = errors.New("rt: invocation timed out")

// Result is the outcome of an invocation: the reply code, optional
// error text, and the result arguments.
type Result struct {
	Code    wire.Code
	ErrText string
	Results [][]byte
	// From is the transport element the reply arrived from (zero when
	// unknown). Replicated calls (§4.3) use it to attribute replies to
	// endpoints for health tracking.
	From oa.Element
}

// Err maps the reply to an error: nil for OK, a ResultError otherwise.
func (r *Result) Err() error {
	if r.Code == wire.OK {
		return nil
	}
	return &ResultError{Code: r.Code, Text: r.ErrText}
}

// Result returns result argument i.
func (r *Result) Result(i int) ([]byte, error) {
	if err := r.Err(); err != nil {
		return nil, err
	}
	if i >= len(r.Results) {
		return nil, fmt.Errorf("rt: missing result %d (have %d)", i, len(r.Results))
	}
	return r.Results[i], nil
}

// ResultError is a non-OK reply surfaced as an error.
type ResultError struct {
	Code wire.Code
	Text string
}

func (e *ResultError) Error() string {
	if e.Text == "" {
		return fmt.Sprintf("rt: remote error: %s", e.Code)
	}
	return fmt.Sprintf("rt: remote error: %s: %s", e.Code, e.Text)
}

// IsCode reports whether err is a ResultError with the given code.
func IsCode(err error, code wire.Code) bool {
	var re *ResultError
	return errors.As(err, &re) && re.Code == code
}

// Future is the handle to a pending non-blocking invocation (§2:
// "method calls are non-blocking"). The caller may continue working and
// collect the result later. A request sent to a replicated wave may
// receive one reply per contacted replica; the channel is sized for all
// of them, and remaining (guarded by the node's pending lock) counts
// replies still outstanding.
type Future struct {
	id        uint64
	ch        chan *Result
	node      *Node
	remaining int
	// pooled marks futures owned by the synchronous deliver loop, which
	// recycles them (Node.putFuture) once they leave the pending table.
	// Futures returned to users are never pooled.
	pooled bool
}

// Done returns a channel that delivers the result exactly once.
func (f *Future) Done() <-chan *Result { return f.ch }

// Wait blocks until the reply arrives or the timeout elapses. On
// timeout the pending entry is cancelled and ErrTimeout returned; a
// reply that arrives later is dropped.
func (f *Future) Wait(timeout time.Duration) (*Result, error) {
	if timeout <= 0 {
		res := <-f.ch
		return res, nil
	}
	t := f.node.Clock().NewTimer(timeout)
	defer t.Stop()
	select {
	case res := <-f.ch:
		return res, nil
	case <-t.C():
		f.node.cancel(f.id)
		// A reply may have raced the cancellation; prefer it.
		select {
		case res := <-f.ch:
			return res, nil
		default:
			return nil, ErrTimeout
		}
	}
}

func (f *Future) complete(res *Result) {
	select {
	case f.ch <- res:
	default: // already completed or abandoned
	}
}
