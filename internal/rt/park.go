package rt

import (
	"fmt"

	"repro/internal/buf"
	"repro/internal/loid"
	"repro/internal/oa"
	"repro/internal/wire"
)

// Migration gates. While an object migrates away, its source node
// first PARKS newly arriving requests (a bounded FIFO queue, replayed
// in order once the object's fate is settled) and then — once the
// object is running elsewhere — FORWARDS them with a one-hop
// tombstone. Both states live in one gate record so the park→forward
// transition happens under a single lock and the arrival order is
// never reshuffled across it.
//
// The invocation fast path pays one atomic load for all of this: the
// gate table is consulted only while n.nGates is nonzero, i.e. only on
// nodes that are actively migrating an object or still holding a
// tombstone for one.

// parkBound caps a gate's queue. Beyond it, arrivals are answered
// ErrUnavailable (retryable) — the caller's retry/refresh machinery
// absorbs the bounce, exactly as it absorbs transient message loss.
const parkBound = 512

// gate is the per-object migration gate: parking (forwarding=false) or
// a forwarding tombstone (forwarding=true). dead marks a gate that has
// been removed from the table but may still be held by a concurrent
// receiver.
type gate struct {
	forwarding bool
	dead       bool
	to         oa.Element
	exempt     loid.LOID
	q          []*wire.Frame
}

// Park installs a drain gate for l: request frames arriving for l are
// queued in arrival order instead of delivered. Frames whose calling
// identity is exempt bypass the gate — the Host Object drains the
// mailbox to a quiesce point by calling SaveState through it, and that
// call must land. Parking an already-gated object fails.
func (n *Node) Park(l loid.LOID, exempt loid.LOID) error {
	n.gmu.Lock()
	defer n.gmu.Unlock()
	if _, ok := n.gates[l.ID()]; ok {
		return fmt.Errorf("rt: object %v already gated on node %s", l, n.name)
	}
	if n.gates == nil {
		n.gates = make(map[loid.LOID]*gate)
	}
	n.gates[l.ID()] = &gate{exempt: exempt}
	n.nGates.Add(1)
	return nil
}

// Unpark removes l's drain gate and replays the queued frames, in
// arrival order, into the still-local object's mailbox — the abort
// path of a migration. Replayed frames keep their position ahead of
// new arrivals: the replay happens before the gate comes out of the
// table, and receivers that already hold the gate observe dead and
// deliver normally. Returns the number of frames replayed.
func (n *Node) Unpark(l loid.LOID) int {
	n.gmu.Lock()
	g, ok := n.gates[l.ID()]
	if !ok || g.forwarding {
		n.gmu.Unlock()
		return 0
	}
	o, live := n.Lookup(l)
	replayed := 0
	for _, f := range g.q {
		if !live {
			n.bounceParked(f, "object gone during migration abort")
			continue
		}
		select {
		case o.mailbox <- f:
			replayed++
		default:
			// A full mailbox must not block the abort; bounce to the
			// caller's retry loop instead.
			n.bounceParked(f, "mailbox full during migration abort")
		}
	}
	g.q = nil
	g.dead = true
	delete(n.gates, l.ID())
	n.nGates.Add(-1)
	n.gmu.Unlock()
	return replayed
}

// ForwardParked flips l's drain gate into a one-hop forwarding
// tombstone aimed at to: queued frames are flushed there in arrival
// order, and subsequent arrivals are forwarded as they come — the
// commit path of a migration, run after the local incarnation is
// killed. Returns the number of frames flushed.
func (n *Node) ForwardParked(l loid.LOID, to oa.Element) int {
	n.gmu.Lock()
	defer n.gmu.Unlock()
	g, ok := n.gates[l.ID()]
	if !ok {
		return 0
	}
	g.forwarding = true
	g.to = to
	flushed := 0
	for _, f := range g.q {
		n.forwardFrame(f, to)
		f.Close()
		flushed++
	}
	g.q = nil
	return flushed
}

// DropTombstone removes l's forwarding tombstone (installed by
// ForwardParked). From then on stale callers get the ordinary
// ErrNoSuchObject verdict and refresh their bindings. Reports whether
// a tombstone was removed.
func (n *Node) DropTombstone(l loid.LOID) bool {
	n.gmu.Lock()
	defer n.gmu.Unlock()
	g, ok := n.gates[l.ID()]
	if !ok || !g.forwarding {
		return false
	}
	g.dead = true
	delete(n.gates, l.ID())
	n.nGates.Add(-1)
	return true
}

// clearGate drops any gate for l unconditionally — Spawn installs the
// object again (a migration returning home), so a leftover tombstone
// must not shadow the live incarnation.
func (n *Node) clearGate(l loid.LOID) {
	if n.nGates.Load() == 0 {
		return
	}
	n.gmu.Lock()
	if g, ok := n.gates[l.ID()]; ok {
		for _, f := range g.q {
			n.bounceParked(f, "object respawned during migration")
		}
		g.q = nil
		g.dead = true
		delete(n.gates, l.ID())
		n.nGates.Add(-1)
	}
	n.gmu.Unlock()
}

// dropAllGates releases every gate (node shutdown).
func (n *Node) dropAllGates() {
	n.gmu.Lock()
	for id, g := range n.gates {
		for _, f := range g.q {
			f.Close()
		}
		g.q = nil
		g.dead = true
		delete(n.gates, id)
		n.nGates.Add(-1)
	}
	n.gmu.Unlock()
}

// gated reports whether l currently has a gate — the co-resident
// bypass in deliverOne must fall through to the transport path while
// one is up, or local callers would slip past the drain.
func (n *Node) gated(l loid.LOID) bool {
	if n.nGates.Load() == 0 {
		return false
	}
	n.gmu.Lock()
	_, ok := n.gates[l.ID()]
	n.gmu.Unlock()
	return ok
}

// handleGated routes one request frame through l's gate. It reports
// whether the frame was consumed; false means "deliver normally" (the
// gate is dead, or the frame is exempt from the drain). Called from
// receiveFrame with the frame parsed and the backing buffer live.
func (n *Node) handleGated(g *gate, f *wire.Frame, b *buf.Buffer) bool {
	n.gmu.Lock()
	if g.dead {
		n.gmu.Unlock()
		return false
	}
	if g.forwarding {
		to := g.to
		if f.Forwarded() {
			// One hop only: a frame that already rode a tombstone is
			// answered with the stale-binding verdict so its caller
			// refreshes instead of ping-ponging between tombstones.
			n.gmu.Unlock()
			n.cStale.Inc()
			if f.Kind == wire.KindRequest && f.HasReplyTo() {
				n.replyFrame(f, wire.ErrNoSuchObject, fmt.Sprintf("object %v migrated away", f.Target()), nil)
			}
			f.Close()
			return true
		}
		// Forward under the gate lock: arrivals racing the flush in
		// ForwardParked stay behind the queued frames.
		n.forwardFrame(f, to)
		n.gmu.Unlock()
		f.Close()
		return true
	}
	if !g.exempt.IsNil() && g.exempt.SameObject(f.EnvCalling()) {
		n.gmu.Unlock()
		return false
	}
	if len(g.q) >= parkBound {
		n.gmu.Unlock()
		if f.Kind == wire.KindRequest && f.HasReplyTo() {
			n.replyFrame(f, wire.ErrUnavailable, "migration drain queue full", nil)
		}
		f.Close()
		return true
	}
	f.Own(b) // the queue outlives this call: pin the buffer
	g.q = append(g.q, f)
	n.cParked.Inc()
	n.gmu.Unlock()
	if ob := n.Observer(); ob != nil {
		ob.Note("park", f.Target().String(), f.Method(), f.TraceID())
	}
	return true
}

// forwardFrame re-sends a parked or tombstoned frame one hop. The
// frame's bytes may alias a larger transport window, so they are
// copied into a fresh pooled buffer, stamped with the forwarded flag,
// and handed to the endpoint. The reply-to inside the frame still
// names the original caller: the new host answers it directly, and the
// reply's from-address doubles as the caller's binding-refresh hint.
func (n *Node) forwardFrame(f *wire.Frame, to oa.Element) {
	fb := buf.Get()
	fb.B = append(fb.B[:0], f.Raw()...)
	wire.MarkForwarded(fb.B)
	// Best effort: a lost forward surfaces as a caller timeout and is
	// healed by retry + binding refresh, like any lost message.
	_ = n.ep.SendBuf(to, fb)
	fb.Release()
	n.cForwarded.Inc()
	if ob := n.Observer(); ob != nil {
		ob.Note("forward", f.Target().String(), f.Method(), f.TraceID())
	}
}

// bounceParked answers a parked frame with a retryable verdict and
// releases it — used when a replay target is unavailable.
func (n *Node) bounceParked(f *wire.Frame, why string) {
	if f.Kind == wire.KindRequest && f.HasReplyTo() {
		n.replyFrame(f, wire.ErrUnavailable, why, nil)
	}
	f.Close()
}
