package rt

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binding"
	"repro/internal/buf"
	"repro/internal/clock"
	"repro/internal/health"
	"repro/internal/loid"
	"repro/internal/oa"
	"repro/internal/security"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrUnbound reports that no binding could be obtained for a LOID.
var ErrUnbound = errors.New("rt: no binding for target")

// Resolver obtains bindings on local cache misses; it is typically
// backed by the object's Binding Agent (§3.6), whose Object Address is
// part of the object's persistent state.
type Resolver interface {
	// Resolve binds l to an Object Address (GetBinding(LOID)).
	Resolve(l loid.LOID) (binding.Binding, error)
	// Refresh asks for a different binding than the stale one passed
	// in (GetBinding(binding), §3.6).
	Refresh(stale binding.Binding) (binding.Binding, error)
}

// CtxResolver is an optional Resolver extension. A resolver that makes
// nested invocations (the Binding Agent client) implements it so the
// original call's remaining deadline and trace identity propagate into
// the resolution chain; plain Resolvers keep working unchanged.
type CtxResolver interface {
	ResolveCtx(ctx context.Context, l loid.LOID) (binding.Binding, error)
	RefreshCtx(ctx context.Context, stale binding.Binding) (binding.Binding, error)
}

// resolverRef boxes a Resolver so a nil resolver is representable in an
// atomic.Pointer.
type resolverRef struct{ r Resolver }

// Caller is one object's Legion-aware communication layer (§4.1.2): it
// caches bindings, consults its Resolver on misses, and detects and
// repairs stale bindings (§4.1.4). A Caller may also be used
// free-standing (not attached to a spawned object) as a client handle.
//
// The invocation fast path (§5.2.1: the common case must be as close to
// a raw message send as possible) holds no Caller lock: the cache and
// resolver live behind atomic pointers and address-selection randomness
// comes from a lock-free splitmix64 stream, so concurrent invocations
// through one Caller never serialize on Caller state.
type Caller struct {
	node *Node
	self loid.LOID
	env  wire.Env

	resolver atomic.Pointer[resolverRef]
	cache    atomic.Pointer[binding.Cache]
	health   atomic.Pointer[health.Tracker]
	rngState atomic.Uint64
	traceSeq atomic.Uint64 // per-caller root-sampling counter

	// Timeout is the per-wave reply deadline (default 2s). A call with
	// a propagated deadline uses min(Timeout, remaining budget) per
	// wave.
	Timeout time.Duration
	// MaxRefresh bounds stale-binding refresh attempts per invocation
	// (default 2). Superseded by Retry.MaxAttempts when that is set.
	MaxRefresh int
	// Retry configures the synchronous retry loop; the zero value
	// keeps the historical MaxRefresh+1-attempts-no-backoff behaviour.
	Retry RetryPolicy
	// Budget, when non-nil, rate-limits this caller's retries (shared
	// budgets bound retry amplification fleet-wide). Nil = unlimited.
	Budget *RetryBudget
}

// NewCaller builds a communication layer for self on node. resolver
// may be nil (only cached/explicitly added bindings and direct
// addresses will work — the bootstrap objects run this way).
func NewCaller(node *Node, self loid.LOID, resolver Resolver) *Caller {
	c := &Caller{
		node:       node,
		self:       self,
		env:        security.Env(self),
		Timeout:    2 * time.Second,
		MaxRefresh: 2,
	}
	c.resolver.Store(&resolverRef{r: resolver})
	cache := binding.NewCache(DefaultBindingCacheSize)
	if node.clk != nil {
		// Bindings minted under a virtual clock carry virtual-epoch
		// expiries; the cache must judge them on the same time base.
		cache.SetClock(node.clk.Now)
	}
	c.cache.Store(cache)
	c.rngState.Store(uint64(self.ClassID)<<32 ^ uint64(self.ClassSpecific) ^ 0x5DEECE66D)
	return c
}

// DefaultBindingCacheSize is the default per-object binding cache
// capacity; experiments override it via SetCache.
const DefaultBindingCacheSize = 512

// SetResolver installs or replaces the resolver.
func (c *Caller) SetResolver(r Resolver) {
	c.resolver.Store(&resolverRef{r: r})
}

// SetCache replaces the binding cache (e.g. with a different capacity).
// The node's clock carries over to the new cache.
func (c *Caller) SetCache(cache *binding.Cache) {
	if c.node.clk != nil {
		cache.SetClock(c.node.clk.Now)
	}
	c.cache.Store(cache)
}

// SetHealth installs a per-destination health tracker (nil disables).
// Trackers are typically shared by many callers so that one caller's
// timeout spares the rest the same discovery. With a tracker set,
// deliver skips endpoints whose breaker is open, prefers healthy
// replicas in wave order, and reports send/reply outcomes back.
func (c *Caller) SetHealth(t *health.Tracker) {
	c.health.Store(t)
}

// Health returns the installed health tracker (nil when disabled).
func (c *Caller) Health() *health.Tracker { return c.health.Load() }

// Cache returns the binding cache (for inspection and explicit
// AddBinding-style propagation).
func (c *Caller) Cache() *binding.Cache {
	return c.cache.Load()
}

// getResolver returns the current resolver (possibly nil).
func (c *Caller) getResolver() Resolver {
	return c.resolver.Load().r
}

// SetEnv overrides the security environment used for outgoing calls
// (delegating the Responsible/Security Agent roles, §2.4).
func (c *Caller) SetEnv(env wire.Env) { c.env = env }

// Env returns the caller's outgoing security environment.
func (c *Caller) Env() wire.Env { return c.env }

// Self returns the identity the caller acts as.
func (c *Caller) Self() loid.LOID { return c.self }

// AddBinding seeds the local cache (binding propagation, §3.6).
func (c *Caller) AddBinding(b binding.Binding) { c.Cache().Add(b) }

// startSpan begins the client-side span for one call: a child when the
// surrounding invocation is traced, otherwise a sampled root. With no
// tracer installed this costs one atomic load. The root-sampling
// counter is per-caller — concurrent callers must not contend on one
// shared cache line just to decide "not sampled".
func (c *Caller) startSpan(ctx context.Context, method string) *trace.Span {
	tr := c.node.tracer.Load()
	if tr == nil {
		return nil
	}
	if parent := trace.FromContext(ctx); parent.Valid() {
		return tr.Child(parent, "call", method, c.node.name)
	}
	if c.traceSeq.Add(1)%tr.SampleEvery() != 0 {
		return nil
	}
	return tr.RootAlways("call", method, c.node.name)
}

// finishCall stamps the call span with the outcome.
func finishCall(span *trace.Span, res *Result, err error) {
	if span == nil {
		return
	}
	switch {
	case err != nil:
		span.Finish("error: " + err.Error())
	case res != nil:
		span.Finish(res.Code.String())
	default:
		span.Finish("")
	}
}

// withSpan threads a live span's identity into ctx so nested hops made
// on our behalf (resolver calls) become its children.
func withSpan(ctx context.Context, span *trace.Span) context.Context {
	if span == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return trace.NewContext(ctx, span.Context())
}

// resolve order: cache, then resolver. The cache-hit path is lock-free
// above the cache shard itself. A traced call records the cache verdict
// as a span event and hands its identity to a CtxResolver so Binding
// Agent hops join the trace.
func (c *Caller) resolve(ctx context.Context, target loid.LOID, span *trace.Span) (binding.Binding, error) {
	cache := c.Cache()
	if b, ok := cache.Get(target); ok {
		span.Event("cache", "hit")
		return b, nil
	}
	span.Event("cache", "miss")
	r := c.getResolver()
	if r == nil {
		return binding.Binding{}, fmt.Errorf("%w: %v (no resolver)", ErrUnbound, target)
	}
	var b binding.Binding
	var err error
	if cr, ok := r.(CtxResolver); ok {
		b, err = cr.ResolveCtx(withSpan(ctx, span), target)
	} else {
		b, err = r.Resolve(target)
	}
	if err != nil {
		return binding.Binding{}, fmt.Errorf("%w: %v: %v", ErrUnbound, target, err)
	}
	cache.Add(b)
	return b, nil
}

// Invoke performs a non-blocking method invocation and returns a
// Future. Binding resolution and transmission happen before return;
// only the reply is awaited through the Future.
func (c *Caller) Invoke(target loid.LOID, method string, args ...[]byte) (*Future, error) {
	return c.InvokeCtx(context.Background(), target, method, args...)
}

// InvokeCtx is Invoke with a context: the context's deadline (if any)
// is stamped into the request environment so the receiving object and
// its nested calls inherit the remaining budget.
func (c *Caller) InvokeCtx(ctx context.Context, target loid.LOID, method string, args ...[]byte) (*Future, error) {
	b, err := c.resolve(ctx, target, nil)
	if err != nil {
		return nil, err
	}
	return c.sendRequest(b.Address, target, method, args, deadlineNanos(ctx), trace.FromContext(ctx))
}

// Call is the synchronous convenience around Invoke: it awaits the
// reply, transparently refreshing stale bindings and retrying
// (§4.1.4: "when [a binding] doesn't work ... request that the binding
// be refreshed").
func (c *Caller) Call(target loid.LOID, method string, args ...[]byte) (*Result, error) {
	return c.CallCtx(context.Background(), target, method, args...)
}

// CallCtx is Call with a context. The context's deadline bounds the
// whole call — per-wave timeouts are clipped to the remaining budget,
// the deadline rides wire.Env so nested hops inherit what is left, and
// an expired budget yields a definitive ErrDeadlineExceeded result.
// Retries follow c.Retry (attempts, jittered exponential backoff) and
// draw on c.Budget when one is installed.
func (c *Caller) CallCtx(ctx context.Context, target loid.LOID, method string, args ...[]byte) (*Result, error) {
	span := c.startSpan(ctx, method)
	res, err := c.callCtx(ctx, target, method, args, span)
	finishCall(span, res, err)
	return res, err
}

// callCtx is the CallCtx body; the span (nil when untraced) collects
// cache, retry, refresh, breaker and deadline events along the way.
func (c *Caller) callCtx(ctx context.Context, target loid.LOID, method string, args [][]byte, span *trace.Span) (*Result, error) {
	b, err := c.resolve(ctx, target, span)
	if err != nil {
		return nil, err
	}
	deadline := deadlineOf(ctx)
	maxAttempts := c.Retry.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = c.MaxRefresh + 1
	}
	for attempt := 0; ; attempt++ {
		res, err := c.deliver(ctx, b.Address, target, method, args, span)
		if err == nil && !retryable(res.Code) {
			c.noteResponder(b, res.From, span)
			return res, nil
		}
		if attempt >= maxAttempts-1 {
			if err != nil {
				return nil, err
			}
			return res, nil
		}
		// Retries cost budget: a shared budget keeps a partial outage
		// from amplifying offered load exactly when capacity is short.
		if !c.Budget.takeAt(c.now()) {
			span.Event("retry", "budget exhausted")
			if err != nil {
				return nil, fmt.Errorf("rt: %v (retry budget exhausted)", err)
			}
			return res, nil
		}
		if span != nil {
			why := "send error"
			if res != nil {
				why = res.Code.String()
			}
			span.Event("retry", fmt.Sprintf("attempt %d after %s", attempt+2, why))
		}
		// Jittered exponential backoff decorrelates retry storms. The
		// sleep is clipped to the deadline; if the budget runs out the
		// next deliver returns ErrDeadlineExceeded.
		_ = sleepBackoff(c.node.Clock(), c.Retry.backoff(attempt, c.intn), deadline)
		// The binding is stale or the endpoint unreachable: refresh.
		nb, rerr := c.refresh(ctx, b, span)
		if rerr != nil {
			// A refresh failure with a merely-unavailable (not
			// stale-signalled) binding usually means transient message
			// loss; retransmit on the old binding instead of giving up
			// (§4.1.4 expects the communication layer to absorb this).
			if res != nil && res.Code == wire.ErrUnavailable {
				c.Cache().Add(b)
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("rt: %v (refresh failed: %v)", err, rerr)
			}
			return res, nil
		}
		b = nb
	}
}

// noteResponder is the binding-refresh hint a migration tombstone
// pushes back to callers: replies carry the responder's element, and a
// definitive answer from an element OTHER than the one the (single-
// element) binding names means the object now lives there — a
// forwarded call answered by the new host. Re-pointing the cached
// binding turns the one-hop tombstone into a self-healing redirect:
// the very next call goes straight to the new home, no refresh RPC.
// Replicated addresses are left alone — any replica may answer those.
func (c *Caller) noteResponder(b binding.Binding, from oa.Element, span *trace.Span) {
	if from == (oa.Element{}) || len(b.Address.Elements) != 1 || b.Address.Elements[0] == from {
		return
	}
	span.Event("rebind", "reply from new home; cache re-pointed")
	c.Cache().Add(binding.Binding{LOID: b.LOID, Address: oa.Single(from), Expires: b.Expires})
}

// deadlineOf extracts a context deadline (zero time when absent).
func deadlineOf(ctx context.Context) time.Time {
	if ctx == nil {
		return time.Time{}
	}
	d, ok := ctx.Deadline()
	if !ok {
		return time.Time{}
	}
	return d
}

// deadlineNanos is deadlineOf in wire encoding (0 = none).
func deadlineNanos(ctx context.Context) int64 {
	d := deadlineOf(ctx)
	if d.IsZero() {
		return 0
	}
	return d.UnixNano()
}

func (c *Caller) refresh(ctx context.Context, stale binding.Binding, span *trace.Span) (binding.Binding, error) {
	span.Event("refresh", "stale binding invalidated")
	c.Cache().InvalidateBinding(stale)
	r := c.getResolver()
	if r == nil {
		return binding.Binding{}, ErrUnbound
	}
	var nb binding.Binding
	var err error
	if cr, ok := r.(CtxResolver); ok {
		nb, err = cr.RefreshCtx(withSpan(ctx, span), stale)
	} else {
		nb, err = r.Refresh(stale)
	}
	if err != nil {
		return binding.Binding{}, err
	}
	c.Cache().Add(nb)
	return nb, nil
}

// CallAddr invokes a method at an explicit Object Address, bypassing
// binding resolution. Bootstrap and Binding Agent clients use it (the
// agent's address is part of the object's persistent state, §3.6).
func (c *Caller) CallAddr(addr oa.Address, target loid.LOID, method string, args ...[]byte) (*Result, error) {
	return c.CallAddrCtx(context.Background(), addr, target, method, args...)
}

// CallAddrCtx is CallAddr with a context: the deadline bounds the call
// and a carried trace identity parents this hop's span.
func (c *Caller) CallAddrCtx(ctx context.Context, addr oa.Address, target loid.LOID, method string, args ...[]byte) (*Result, error) {
	span := c.startSpan(ctx, method)
	res, err := c.deliver(ctx, addr, target, method, args, span)
	finishCall(span, res, err)
	return res, err
}

// OneWay sends a method invocation with no reply expected.
func (c *Caller) OneWay(target loid.LOID, method string, args ...[]byte) error {
	b, err := c.resolve(context.Background(), target, nil)
	if err != nil {
		return err
	}
	return c.OneWayAddr(b.Address, target, method, args...)
}

// OneWayAddr sends a no-reply invocation to an explicit Object
// Address, bypassing binding resolution (used for push-style
// notifications such as binding propagation, §4.1.4).
func (c *Caller) OneWayAddr(addr oa.Address, target loid.LOID, method string, args ...[]byte) error {
	wb := buf.Get()
	wb.B = wire.AppendRequest(wb.B, wire.KindOneWay, 0, target, method, &c.env, oa.Address{}, args)
	defer wb.Release()
	waves := addr.Targets(c.intn)
	var lastErr error = transport.ErrUnreachable
	for _, wave := range waves {
		sent := false
		for _, e := range wave {
			if err := c.node.sendBuf(e, wb); err == nil {
				sent = true
			} else {
				lastErr = err
			}
		}
		if sent {
			return nil
		}
	}
	return lastErr
}

// retryable reports reply codes that mean "try another replica or a
// refreshed binding" rather than a definitive answer. The
// classification itself lives next to the codes (wire.Retryable) so
// additions are audited — and table-tested — in one place.
func retryable(code wire.Code) bool {
	return wire.Retryable(code)
}

// timerPool recycles the per-wave reply timers; every synchronous call
// arms one, so allocating a fresh runtime timer per call is measurable
// on the fast path.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// now/since/until read the hosting node's clock; on the wall clock
// (the common case) they compile down to the direct time calls the
// fast path always made, behind one predictable nil check.
func (c *Caller) now() time.Time                  { return c.node.now() }
func (c *Caller) since(t time.Time) time.Duration { return c.node.since(t) }

func (c *Caller) until(t time.Time) time.Duration {
	if c.node.clk != nil {
		return c.node.clk.Until(t)
	}
	return time.Until(t)
}

// callTimer is the per-wave reply timer behind the clock seam: on the
// wall clock it is a pooled runtime timer (the zero-alloc fast path,
// unchanged); on an installed Virtual clock it is a clock timer that
// fires when the driving goroutine advances time.
type callTimer struct {
	wall *time.Timer
	virt clock.Timer
	ch   <-chan time.Time
}

func (c *Caller) armTimer(d time.Duration) callTimer {
	if c.node.clk == nil {
		t := getTimer(d)
		return callTimer{wall: t, ch: t.C}
	}
	t := c.node.clk.NewTimer(d)
	return callTimer{virt: t, ch: t.C()}
}

func (t callTimer) release() {
	if t.wall != nil {
		putTimer(t.wall)
		return
	}
	t.virt.Stop()
}

// deliver sends one request according to the address semantics and
// waits for a definitive reply, walking failover waves on timeout or
// unreachability (§3.4, §4.3). Within a multi-element wave (SemAll,
// SemKofN) a dead replica's "no such object" does not defeat a live
// replica's answer: the caller keeps listening until a definitive
// reply, all contacted replicas have answered retryably, or the wave
// deadline passes.
//
// Verdict bookkeeping is per wave: if every wave fails, the returned
// retryable Result describes the LAST wave attempted, not a leftover
// reply from an earlier wave — a wave-1 "no such object" must not
// masquerade as the verdict when wave 2 timed out without answering.
//
// With a health tracker installed, waves are reordered to prefer
// healthy endpoints, endpoints whose breaker is open are skipped
// (fail-fast instead of burning a wave timeout on a known-dead
// replica), and every outcome is reported back: a send error or an
// unanswered wave timeout is a failure; ANY reply — even a retryable
// one — proves the endpoint alive. With no tracker and no context
// deadline the function is byte-for-byte the PR 1 fast path.
func (c *Caller) deliver(ctx context.Context, addr oa.Address, target loid.LOID, method string, args [][]byte, span *trace.Span) (*Result, error) {
	if len(addr.Elements) == 1 {
		// Single destination, no failover: the overwhelmingly common
		// case for a cached binding to an unreplicated object. Every
		// semantic reduces to one wave of one element here, so the
		// wave construction (two allocations) is skipped entirely.
		return c.deliverOne(ctx, addr.Elements[0], target, method, args, span)
	}
	waves := addr.Targets(c.intn)
	if len(waves) == 0 {
		return nil, fmt.Errorf("%w: empty address", ErrUnbound)
	}
	deadline := deadlineOf(ctx)
	var dlNanos int64
	if !deadline.IsZero() {
		dlNanos = deadline.UnixNano()
	}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	sc := span.Context()
	ht := c.health.Load()
	if ht != nil && len(waves) > 1 {
		sortWavesByHealth(ht, waves)
	}
	var last *Result
	skipped := 0
	for wi, wave := range waves {
		if ht != nil {
			wave = filterWave(ht, wave)
			if len(wave) == 0 {
				skipped++
				if span != nil {
					span.Event("breaker", fmt.Sprintf("wave %d skipped: all endpoints open", wi+1))
				}
				continue
			}
		}
		if wi > 0 && span != nil {
			span.Event("failover", fmt.Sprintf("wave %d", wi+1))
		}
		waveTimeout := c.Timeout
		if !deadline.IsZero() {
			remain := c.until(deadline)
			if remain <= 0 {
				span.Event("deadline", "budget exhausted before send")
				return &Result{Code: wire.ErrDeadlineExceeded, ErrText: ErrTimeout.Error()}, nil
			}
			if remain < waveTimeout {
				waveTimeout = remain
			}
		}
		var waveStart time.Time
		if ht != nil {
			waveStart = c.now()
		}
		f, contacted, err := c.sendTo(wave, target, method, args, dlNanos, ht, sc, true)
		if err != nil {
			last = &Result{Code: wire.ErrUnavailable, ErrText: err.Error()}
			continue
		}
		var replied []bool
		if ht != nil {
			replied = make([]bool, len(contacted))
		}
		var waveLast *Result
		timer := c.armTimer(waveTimeout)
		collected := 0
		waveDone := false
		for !waveDone {
			select {
			case res := <-f.ch:
				collected++
				if ht != nil {
					attributeReply(ht, contacted, replied, res.From, c.since(waveStart))
				}
				if !retryable(res.Code) {
					timer.release()
					c.node.cancel(f.id)
					c.node.putFuture(f)
					return res, nil
				}
				waveLast = res
				if collected >= len(contacted) {
					waveDone = true
				}
			case <-timer.ch:
				c.node.cancel(f.id)
				if ht != nil {
					// Endpoints that never answered within the wave
					// deadline are the health signal a silent crash
					// leaves behind.
					for i, e := range contacted {
						if !replied[i] {
							ht.ReportFailure(e)
						}
					}
				}
				if waveLast == nil {
					if !deadline.IsZero() && !c.now().Before(deadline) {
						span.Event("deadline", "expired awaiting reply")
						waveLast = &Result{Code: wire.ErrDeadlineExceeded, ErrText: ErrTimeout.Error()}
					} else {
						waveLast = &Result{Code: wire.ErrUnavailable, ErrText: ErrTimeout.Error()}
					}
				}
				waveDone = true
			case <-ctxDone:
				timer.release()
				c.node.cancel(f.id)
				c.node.putFuture(f)
				span.Event("deadline", "context cancelled")
				return &Result{Code: wire.ErrDeadlineExceeded, ErrText: ctx.Err().Error()}, nil
			}
		}
		timer.release()
		// The wave is settled: every contacted replica answered (the
		// final reply removed the pending entry) or the timeout branch
		// cancelled it — either way the future is out of the table and
		// safe to recycle.
		c.node.putFuture(f)
		last = waveLast
	}
	if last == nil {
		if skipped > 0 {
			// Every candidate endpoint sat behind an open breaker: fail
			// fast. The refresh/retry layer above decides what is next;
			// half-open probes will readmit traffic shortly.
			span.Event("breaker", "all destinations circuit-open")
			last = &Result{Code: wire.ErrUnavailable, ErrText: "all destinations circuit-open"}
		} else {
			last = &Result{Code: wire.ErrUnavailable, ErrText: "no reachable address"}
		}
	}
	return last, nil
}

// filterWave drops endpoints whose breaker rejects traffic, compacting
// in place (wave slices are freshly built by Targets, so mutation is
// safe and allocation-free).
func filterWave(ht *health.Tracker, wave []oa.Element) []oa.Element {
	n := 0
	for _, e := range wave {
		if ht.Allow(e) {
			wave[n] = e
			n++
		}
	}
	return wave[:n]
}

// sortWavesByHealth stably reorders failover waves so waves containing
// the healthiest (and among equals, fastest) endpoints are tried
// first — routing around sick replicas before they cost a timeout.
func sortWavesByHealth(ht *health.Tracker, waves [][]oa.Element) {
	rank := func(wave []oa.Element) (int, time.Duration) {
		best, bestLat := int(^uint(0)>>1), time.Duration(0)
		for _, e := range wave {
			r, l := ht.Rank(e), ht.Latency(e)
			if r < best || (r == best && l < bestLat) {
				best, bestLat = r, l
			}
		}
		return best, bestLat
	}
	sort.SliceStable(waves, func(i, j int) bool {
		ri, li := rank(waves[i])
		rj, lj := rank(waves[j])
		if ri != rj {
			return ri < rj
		}
		return li < lj
	})
}

// attributeReply credits a reply to the contacted endpoint it came
// from. Any reply proves the endpoint alive — a "no such object" is a
// healthy endpoint reporting a stale binding, not a sick one.
func attributeReply(ht *health.Tracker, contacted []oa.Element, replied []bool, from oa.Element, latency time.Duration) {
	if from == (oa.Element{}) {
		return
	}
	for i, e := range contacted {
		if e == from && !replied[i] {
			replied[i] = true
			ht.ReportSuccess(from, latency)
			return
		}
	}
	// Not in this wave (e.g. a late reply routed oddly); still counts
	// as proof of life.
	ht.ReportSuccess(from, latency)
}

func (c *Caller) sendRequest(addr oa.Address, target loid.LOID, method string, args [][]byte, dlNanos int64, sc trace.SpanContext) (*Future, error) {
	waves := addr.Targets(c.intn)
	if len(waves) == 0 {
		return nil, fmt.Errorf("%w: empty address", ErrUnbound)
	}
	f, _, err := c.sendTo(waves[0], target, method, args, dlNanos, c.health.Load(), sc, false)
	return f, err
}

// sendTo transmits one request wave, returning the future and the
// elements actually contacted (the input slice itself when every send
// succeeded, so the common case does not allocate). The request is
// marshalled ONCE into a pooled ref-counted buffer and handed to every
// transport zero-copy; a transport that needs the bytes past its own
// return takes its own reference, so the buffer recycles the moment
// the last holder lets go. Send failures are reported to ht when
// installed. pooled futures are recycled by the deliver loop; futures
// escaping to users must pass pooled=false.
func (c *Caller) sendTo(wave []oa.Element, target loid.LOID, method string, args [][]byte, dlNanos int64, ht *health.Tracker, sc trace.SpanContext, pooled bool) (*Future, []oa.Element, error) {
	f := c.node.newFuture(len(wave), pooled)
	env := c.env
	env.Deadline = dlNanos
	env.TraceID, env.SpanID, env.ParentSpanID = sc.TraceID, sc.SpanID, sc.ParentSpanID
	wb := buf.Get()
	wb.B = wire.AppendRequest(wb.B, wire.KindRequest, f.id, target, method, &env, c.node.Address(), args)
	sent := 0
	var lastErr error
	for _, e := range wave {
		if err := c.node.sendBuf(e, wb); err == nil {
			wave[sent] = e // compact in place; wave is freshly built by Targets
			sent++
		} else {
			lastErr = err
			if ht != nil {
				ht.ReportFailure(e)
			}
		}
	}
	wb.Release()
	if sent == 0 {
		c.node.cancel(f.id)
		c.node.putFuture(f)
		if lastErr == nil {
			lastErr = transport.ErrUnreachable
		}
		return nil, nil, lastErr
	}
	if sent < len(wave) {
		c.node.adjustPending(f.id, sent-len(wave))
	}
	return f, wave[:sent], nil
}

// sendOne is sendTo for the single-destination fast path: one pooled
// future, one marshal into a pooled buffer, one send — no wave
// bookkeeping at all.
func (c *Caller) sendOne(e oa.Element, target loid.LOID, method string, args [][]byte, dlNanos int64, ht *health.Tracker, sc trace.SpanContext) (*Future, error) {
	f := c.node.newFuture(1, true)
	env := c.env
	env.Deadline = dlNanos
	env.TraceID, env.SpanID, env.ParentSpanID = sc.TraceID, sc.SpanID, sc.ParentSpanID
	wb := buf.Get()
	wb.B = wire.AppendRequest(wb.B, wire.KindRequest, f.id, target, method, &env, c.node.Address(), args)
	err := c.node.sendBuf(e, wb)
	wb.Release()
	if err != nil {
		c.node.cancel(f.id)
		c.node.putFuture(f)
		if ht != nil {
			ht.ReportFailure(e)
		}
		return nil, err
	}
	return f, nil
}

// deliverOne is deliver's single-destination fast path: one wave of
// one element, the shape every cached binding to an unreplicated
// object produces. Semantics match deliver exactly (deadline clipping,
// breaker fail-fast, health attribution, retryable verdicts); what it
// sheds is the per-wave bookkeeping, and — for the mem fabric's
// zero-latency path, which completes the future on this very goroutine
// during the send — the reply is collected by a non-blocking poll
// before any timer is armed.
//
// When the target is co-resident AND runs its methods safely on the
// calling goroutine (an inline leaf, or an internally-synchronized
// concurrent service object), the call bypasses the fabric entirely:
// no marshal, no correlation id, no goroutine handoff — the paper's
// "as close to a raw message send as possible" (§5.2.1), beaten only
// by not sending at all. A registry miss falls through to the
// transport so a stale binding still earns its ErrNoSuchObject and the
// refresh machinery stays honest.
func (c *Caller) deliverOne(ctx context.Context, e oa.Element, target loid.LOID, method string, args [][]byte, span *trace.Span) (*Result, error) {
	deadline := deadlineOf(ctx)
	var dlNanos int64
	if !deadline.IsZero() {
		if !c.now().Before(deadline) {
			span.Event("deadline", "budget exhausted before send")
			return &Result{Code: wire.ErrDeadlineExceeded, ErrText: ErrTimeout.Error()}, nil
		}
		dlNanos = deadline.UnixNano()
	}
	sc := span.Context()
	if e == c.node.Element() {
		if v, ok := c.node.objects.Load(target.ID()); ok {
			o := v.(*Object)
			// A migration gate must see every arrival: while one is up
			// for the target, skip the bypass so the transport loopback
			// routes this call through the park/forward machinery.
			if (o.inline || o.concurrency > 1) && !c.node.gated(target) {
				select {
				case <-o.done:
					// Stopped but not yet unregistered: let the transport
					// loopback answer with the stale-binding verdict.
				default:
					env := c.env
					env.Deadline = dlNanos
					env.TraceID, env.SpanID, env.ParentSpanID = sc.TraceID, sc.SpanID, sc.ParentSpanID
					return o.serveLocal(method, &env, args), nil
				}
			}
		}
	}
	ht := c.health.Load()
	if ht != nil && !ht.Allow(e) {
		span.Event("breaker", "all destinations circuit-open")
		return &Result{Code: wire.ErrUnavailable, ErrText: "all destinations circuit-open"}, nil
	}
	waveTimeout := c.Timeout
	if !deadline.IsZero() {
		if remain := c.until(deadline); remain < waveTimeout {
			waveTimeout = remain
		}
	}
	var start time.Time
	if ht != nil {
		start = c.now()
	}
	f, err := c.sendOne(e, target, method, args, dlNanos, ht, sc)
	if err != nil {
		return &Result{Code: wire.ErrUnavailable, ErrText: err.Error()}, nil
	}
	// collect finishes the call once the (single) reply is in hand: the
	// pending entry removed itself when the reply landed, so the future
	// is free to recycle.
	collect := func(res *Result) (*Result, error) {
		if ht != nil && res.From != (oa.Element{}) {
			ht.ReportSuccess(res.From, c.since(start))
		}
		c.node.putFuture(f)
		return res, nil
	}
	select {
	case res := <-f.ch:
		return collect(res)
	default:
	}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	timer := c.armTimer(waveTimeout)
	select {
	case res := <-f.ch:
		timer.release()
		return collect(res)
	case <-timer.ch:
		timer.release()
		c.node.cancel(f.id)
		c.node.putFuture(f)
		if ht != nil {
			ht.ReportFailure(e)
		}
		if !deadline.IsZero() && !c.now().Before(deadline) {
			span.Event("deadline", "expired awaiting reply")
			return &Result{Code: wire.ErrDeadlineExceeded, ErrText: ErrTimeout.Error()}, nil
		}
		return &Result{Code: wire.ErrUnavailable, ErrText: ErrTimeout.Error()}, nil
	case <-ctxDone:
		timer.release()
		c.node.cancel(f.id)
		c.node.putFuture(f)
		span.Event("deadline", "context cancelled")
		return &Result{Code: wire.ErrDeadlineExceeded, ErrText: ctx.Err().Error()}, nil
	}
}

// intn returns a value in [0,n) from a lock-free splitmix64 stream;
// address selection consults it on every deliver, so it must not
// serialize concurrent callers.
func (c *Caller) intn(n int) int {
	s := c.rngState.Add(0x9E3779B97F4A7C15)
	s ^= s >> 30
	s *= 0xBF58476D1CE4E5B9
	s ^= s >> 27
	s *= 0x94D049BB133111EB
	s ^= s >> 31
	hi, _ := bits.Mul64(s, uint64(n))
	return int(hi)
}
