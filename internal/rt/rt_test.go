package rt

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/binding"
	"repro/internal/idl"
	"repro/internal/loid"
	"repro/internal/metrics"
	"repro/internal/oa"
	"repro/internal/security"
	"repro/internal/transport"
	"repro/internal/wire"
)

// echoImpl answers Echo(x) -> x and counts invocations.
type echoImpl struct {
	mu    sync.Mutex
	calls int
	state []byte
}

func (e *echoImpl) Interface() *idl.Interface {
	return idl.NewInterface("Echo",
		idl.MethodSig{Name: "Echo",
			Params:  []idl.Param{{Name: "x", Type: idl.TBytes}},
			Returns: []idl.Param{{Name: "x", Type: idl.TBytes}}},
		idl.MethodSig{Name: "Fail"},
	)
}

func (e *echoImpl) Dispatch(inv *Invocation) ([][]byte, error) {
	switch inv.Method {
	case "Echo":
		e.mu.Lock()
		e.calls++
		e.mu.Unlock()
		a, err := inv.Arg(0)
		if err != nil {
			return nil, err
		}
		return [][]byte{a}, nil
	case "Fail":
		return nil, errors.New("intentional failure")
	}
	return nil, &NoSuchMethodError{Method: inv.Method}
}

func (e *echoImpl) SaveState() ([]byte, error) { return e.state, nil }
func (e *echoImpl) RestoreState(s []byte) error {
	e.state = append([]byte(nil), s...)
	return nil
}

func newTestFabricNodes(t *testing.T, n int) (*transport.Fabric, []*Node) {
	t.Helper()
	f := transport.NewFabric(nil)
	t.Cleanup(func() { f.Close() })
	nodes := make([]*Node, n)
	for i := range nodes {
		node, err := NewNode(f, nil, fmt.Sprintf("n%d", i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes[i] = node
	}
	return f, nodes
}

func spawnEcho(t *testing.T, n *Node, l loid.LOID, opts ...SpawnOption) *echoImpl {
	t.Helper()
	impl := &echoImpl{}
	if _, err := n.Spawn(l, impl, opts...); err != nil {
		t.Fatal(err)
	}
	return impl
}

func clientOn(n *Node, self loid.LOID) *Caller {
	c := NewCaller(n, self, nil)
	c.Timeout = time.Second
	return c
}

var (
	echoLOID   = loid.NewNoKey(256, 1)
	clientLOID = loid.NewNoKey(300, 1)
)

func TestCallRoundTrip(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	spawnEcho(t, nodes[0], echoLOID)
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(echoLOID, nodes[0].Address()))
	res, err := c.Call(echoLOID, "Echo", []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Result(0)
	if err != nil || string(out) != "ping" {
		t.Fatalf("Result = %q, %v", out, err)
	}
}

func TestInvokeIsNonBlocking(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	// slow handler
	block := make(chan struct{})
	impl := &Behavior{
		Iface: idl.NewInterface("Slow", idl.MethodSig{Name: "Slow"}),
		Handlers: map[string]Handler{
			"Slow": func(inv *Invocation) ([][]byte, error) {
				<-block
				return nil, nil
			},
		},
	}
	if _, err := nodes[0].Spawn(loid.NewNoKey(256, 9), impl); err != nil {
		t.Fatal(err)
	}
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(loid.NewNoKey(256, 9), nodes[0].Address()))
	start := time.Now()
	f, err := c.Invoke(loid.NewNoKey(256, 9), "Slow")
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("Invoke blocked")
	}
	close(block)
	if res, err := f.Wait(2 * time.Second); err != nil || res.Code != wire.OK {
		t.Fatalf("Wait = %v, %v", res, err)
	}
}

func TestAppError(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	spawnEcho(t, nodes[0], echoLOID)
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(echoLOID, nodes[0].Address()))
	res, err := c.Call(echoLOID, "Fail")
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != wire.ErrApp || res.ErrText != "intentional failure" {
		t.Errorf("res = %+v", res)
	}
	if !IsCode(res.Err(), wire.ErrApp) {
		t.Error("IsCode mismatch")
	}
}

func TestNoSuchMethod(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	spawnEcho(t, nodes[0], echoLOID)
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(echoLOID, nodes[0].Address()))
	res, err := c.Call(echoLOID, "Nope")
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != wire.ErrNoSuchMethod {
		t.Errorf("code = %v", res.Code)
	}
}

func TestNoSuchObjectSignalsStaleBinding(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	c := clientOn(nodes[1], clientLOID)
	c.MaxRefresh = 0
	c.AddBinding(binding.Forever(echoLOID, nodes[0].Address()))
	res, err := c.Call(echoLOID, "Echo", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != wire.ErrNoSuchObject {
		t.Errorf("code = %v, want no-such-object", res.Code)
	}
}

// mapResolver is a test Resolver backed by a mutable table.
type mapResolver struct {
	mu       sync.Mutex
	table    map[loid.LOID]binding.Binding
	resolves int
	refreshs int
}

func newMapResolver() *mapResolver {
	return &mapResolver{table: make(map[loid.LOID]binding.Binding)}
}

func (m *mapResolver) set(b binding.Binding) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.table[b.LOID.ID()] = b
}

func (m *mapResolver) Resolve(l loid.LOID) (binding.Binding, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resolves++
	b, ok := m.table[l.ID()]
	if !ok {
		return binding.Binding{}, errors.New("not found")
	}
	return b, nil
}

func (m *mapResolver) Refresh(stale binding.Binding) (binding.Binding, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.refreshs++
	b, ok := m.table[stale.LOID.ID()]
	if !ok {
		return binding.Binding{}, errors.New("not found")
	}
	return b, nil
}

func TestResolverOnCacheMiss(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	spawnEcho(t, nodes[0], echoLOID)
	r := newMapResolver()
	r.set(binding.Forever(echoLOID, nodes[0].Address()))
	c := NewCaller(nodes[1], clientLOID, r)
	c.Timeout = time.Second
	for i := 0; i < 5; i++ {
		if _, err := c.Call(echoLOID, "Echo", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if r.resolves != 1 {
		t.Errorf("resolver consulted %d times, want 1 (then cached)", r.resolves)
	}
}

func TestStaleBindingRefreshAfterMigration(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 3)
	spawnEcho(t, nodes[0], echoLOID)
	r := newMapResolver()
	r.set(binding.Forever(echoLOID, nodes[0].Address()))
	c := NewCaller(nodes[2], clientLOID, r)
	c.Timeout = time.Second
	if _, err := c.Call(echoLOID, "Echo", []byte("1")); err != nil {
		t.Fatal(err)
	}
	// "Migrate": kill on node 0, spawn on node 1, update the resolver
	// (the class would learn the new address), leaving the caller's
	// cached binding stale.
	nodes[0].Kill(echoLOID)
	spawnEcho(t, nodes[1], echoLOID)
	r.set(binding.Forever(echoLOID, nodes[1].Address()))
	res, err := c.Call(echoLOID, "Echo", []byte("2"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != wire.OK {
		t.Fatalf("post-migration call failed: %+v", res)
	}
	if r.refreshs != 1 {
		t.Errorf("refreshes = %d, want 1", r.refreshs)
	}
}

func TestRefreshBoundedByMaxRefresh(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	r := newMapResolver()
	r.set(binding.Forever(echoLOID, nodes[0].Address())) // points nowhere useful
	c := NewCaller(nodes[1], clientLOID, r)
	c.Timeout = 200 * time.Millisecond
	c.MaxRefresh = 3
	res, err := c.Call(echoLOID, "Echo", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != wire.ErrNoSuchObject {
		t.Errorf("code = %v", res.Code)
	}
	if r.refreshs != 3 {
		t.Errorf("refreshes = %d, want 3", r.refreshs)
	}
}

func TestUnboundWithoutResolver(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 1)
	c := clientOn(nodes[0], clientLOID)
	if _, err := c.Call(echoLOID, "Echo", []byte("x")); !errors.Is(err, ErrUnbound) {
		t.Errorf("err = %v, want ErrUnbound", err)
	}
}

func TestOneWayDelivery(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	got := make(chan []byte, 1)
	impl := &Behavior{
		Iface: idl.NewInterface("Sink", idl.MethodSig{Name: "Put", OneWay: true,
			Params: []idl.Param{{Name: "x", Type: idl.TBytes}}}),
		Handlers: map[string]Handler{
			"Put": func(inv *Invocation) ([][]byte, error) {
				got <- inv.Args[0]
				return nil, nil
			},
		},
	}
	sink := loid.NewNoKey(256, 2)
	if _, err := nodes[0].Spawn(sink, impl); err != nil {
		t.Fatal(err)
	}
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(sink, nodes[0].Address()))
	if err := c.OneWay(sink, "Put", []byte("datum")); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-got:
		if string(b) != "datum" {
			t.Errorf("got %q", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("one-way message never arrived")
	}
}

func TestBuiltinPingIamGetInterface(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	self := loid.New(256, 3, loid.DeriveKey("obj"))
	if _, err := nodes[0].Spawn(self, &echoImpl{}); err != nil {
		t.Fatal(err)
	}
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(self, nodes[0].Address()))

	if res, err := c.Call(self, "Ping"); err != nil || res.Code != wire.OK {
		t.Fatalf("Ping: %v %v", res, err)
	}
	res, err := c.Call(self, "Iam")
	if err != nil || res.Code != wire.OK {
		t.Fatalf("Iam: %v %v", res, err)
	}
	idArg, _ := res.Result(0)
	id, err := security.DecodeIdentity(idArg)
	if err != nil || id.LOID != self {
		t.Errorf("Iam identity = %v, %v", id, err)
	}
	res, err = c.Call(self, "GetInterface")
	if err != nil || res.Code != wire.OK {
		t.Fatalf("GetInterface: %v %v", res, err)
	}
	raw, _ := res.Result(0)
	ifc, rest, err := idl.Unmarshal(raw)
	if err != nil || len(rest) != 0 {
		t.Fatalf("interface decode: %v", err)
	}
	for _, m := range []string{"Echo", "Ping", "Iam", "MayI", "GetInterface", "SaveState", "RestoreState"} {
		if !ifc.Has(m) {
			t.Errorf("full interface missing %s", m)
		}
	}
}

func TestSaveRestoreStateRemote(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	impl := spawnEcho(t, nodes[0], echoLOID)
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(echoLOID, nodes[0].Address()))
	if res, err := c.Call(echoLOID, "RestoreState", []byte("persisted")); err != nil || res.Code != wire.OK {
		t.Fatalf("RestoreState: %v %v", res, err)
	}
	res, err := c.Call(echoLOID, "SaveState")
	if err != nil || res.Code != wire.OK {
		t.Fatalf("SaveState: %v %v", res, err)
	}
	state, _ := res.Result(0)
	if string(state) != "persisted" {
		t.Errorf("state = %q", state)
	}
	if string(impl.state) != "persisted" {
		t.Errorf("impl state = %q", impl.state)
	}
}

func TestMayIPolicyEnforced(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	acl := security.NewACL(nil)
	acl.Allow(clientLOID, "Echo")
	impl := &echoImpl{}
	if _, err := nodes[0].Spawn(echoLOID, impl, WithPolicy(acl)); err != nil {
		t.Fatal(err)
	}
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(echoLOID, nodes[0].Address()))

	if res, _ := c.Call(echoLOID, "Echo", []byte("x")); res.Code != wire.OK {
		t.Errorf("granted call denied: %+v", res)
	}
	if res, _ := c.Call(echoLOID, "SaveState"); res.Code != wire.ErrDenied {
		t.Errorf("ungranted call allowed: %+v", res)
	}

	// MayI itself must be answerable to let callers probe access.
	res, err := c.Call(echoLOID, "MayI", wire.String("SaveState"))
	if err != nil || res.Code != wire.OK {
		t.Fatalf("MayI probe: %v %v", res, err)
	}
	allowed, _ := wire.AsBool(res.Results[0])
	if allowed {
		t.Error("MayI probe claimed access that is denied")
	}
	res, _ = c.Call(echoLOID, "MayI", wire.String("Echo"))
	allowed, _ = wire.AsBool(res.Results[0])
	if !allowed {
		t.Error("MayI probe denied granted method")
	}
}

func TestKillThenCallYieldsNoSuchObject(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	spawnEcho(t, nodes[0], echoLOID)
	c := clientOn(nodes[1], clientLOID)
	c.MaxRefresh = 0
	c.AddBinding(binding.Forever(echoLOID, nodes[0].Address()))
	if !nodes[0].Kill(echoLOID) {
		t.Fatal("Kill reported no object")
	}
	if nodes[0].Kill(echoLOID) {
		t.Fatal("double Kill succeeded")
	}
	res, err := c.Call(echoLOID, "Echo", []byte("x"))
	if err != nil || res.Code != wire.ErrNoSuchObject {
		t.Errorf("call after kill: %v %v", res, err)
	}
}

func TestSpawnDuplicateRejected(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 1)
	spawnEcho(t, nodes[0], echoLOID)
	if _, err := nodes[0].Spawn(echoLOID, &echoImpl{}); err == nil {
		t.Fatal("duplicate spawn accepted")
	}
}

func TestNodeObjectsAndLookup(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 1)
	spawnEcho(t, nodes[0], echoLOID)
	if _, ok := nodes[0].Lookup(echoLOID); !ok {
		t.Error("Lookup missed")
	}
	if got := nodes[0].Objects(); len(got) != 1 || !got[0].SameObject(echoLOID) {
		t.Errorf("Objects = %v", got)
	}
}

func TestReplicationSemAllFirstReplyWins(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 3)
	spawnEcho(t, nodes[0], echoLOID)
	spawnEcho(t, nodes[1], echoLOID)
	addr := oa.Replicated(oa.SemAll, 0, nodes[0].Element(), nodes[1].Element())
	c := clientOn(nodes[2], clientLOID)
	c.AddBinding(binding.Forever(echoLOID, addr))
	res, err := c.Call(echoLOID, "Echo", []byte("r"))
	if err != nil || res.Code != wire.OK {
		t.Fatalf("replicated call: %v %v", res, err)
	}
}

func TestReplicationFailoverAfterReplicaDeath(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 3)
	spawnEcho(t, nodes[0], echoLOID)
	spawnEcho(t, nodes[1], echoLOID)
	addr := oa.Replicated(oa.SemOrdered, 0, nodes[0].Element(), nodes[1].Element())
	c := clientOn(nodes[2], clientLOID)
	c.Timeout = 500 * time.Millisecond
	c.AddBinding(binding.Forever(echoLOID, addr))
	// Kill the first replica's entire node so sends fail fast.
	nodes[0].Close()
	res, err := c.Call(echoLOID, "Echo", []byte("r"))
	if err != nil || res.Code != wire.OK {
		t.Fatalf("failover call: %v %v", res, err)
	}
}

func TestReplicationSemRandomSpreadsLoad(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 3)
	i0 := spawnEcho(t, nodes[0], echoLOID)
	i1 := spawnEcho(t, nodes[1], echoLOID)
	addr := oa.Replicated(oa.SemRandom, 0, nodes[0].Element(), nodes[1].Element())
	c := clientOn(nodes[2], clientLOID)
	c.AddBinding(binding.Forever(echoLOID, addr))
	for i := 0; i < 40; i++ {
		if res, err := c.Call(echoLOID, "Echo", []byte("x")); err != nil || res.Code != wire.OK {
			t.Fatal(err)
		}
	}
	i0.mu.Lock()
	c0 := i0.calls
	i0.mu.Unlock()
	i1.mu.Lock()
	c1 := i1.calls
	i1.mu.Unlock()
	if c0+c1 != 40 {
		t.Fatalf("replica calls %d+%d != 40", c0, c1)
	}
	if c0 == 0 || c1 == 0 {
		t.Errorf("SemRandom never used one replica: %d/%d", c0, c1)
	}
}

func TestFutureTimeout(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	block := make(chan struct{})
	defer close(block)
	impl := &Behavior{
		Iface: idl.NewInterface("Slow", idl.MethodSig{Name: "Slow"}),
		Handlers: map[string]Handler{
			"Slow": func(inv *Invocation) ([][]byte, error) { <-block; return nil, nil },
		},
	}
	slow := loid.NewNoKey(256, 4)
	nodes[0].Spawn(slow, impl)
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(slow, nodes[0].Address()))
	f, err := c.Invoke(slow, "Slow")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Wait(50 * time.Millisecond); err != ErrTimeout {
		t.Errorf("Wait = %v, want ErrTimeout", err)
	}
}

func TestPerObjectMetricsLabel(t *testing.T) {
	f := transport.NewFabric(nil)
	defer f.Close()
	reg := metrics.NewRegistry()
	n0, _ := NewNode(f, reg, "n0")
	defer n0.Close()
	n1, _ := NewNode(f, reg, "n1")
	defer n1.Close()
	impl := &echoImpl{}
	n0.Spawn(echoLOID, impl, WithLabel("echo/e1"))
	c := clientOn(n1, clientLOID)
	c.AddBinding(binding.Forever(echoLOID, n0.Address()))
	for i := 0; i < 7; i++ {
		c.Call(echoLOID, "Echo", []byte("x"))
	}
	if got := reg.Counter("req/echo/e1").Value(); got != 7 {
		t.Errorf("req counter = %d, want 7", got)
	}
}

func TestCallerEnvPropagation(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	envCh := make(chan wire.Env, 1)
	impl := &Behavior{
		Iface: idl.NewInterface("EnvProbe", idl.MethodSig{Name: "Probe"}),
		Handlers: map[string]Handler{
			"Probe": func(inv *Invocation) ([][]byte, error) {
				envCh <- inv.Env
				return nil, nil
			},
		},
	}
	probe := loid.NewNoKey(256, 5)
	nodes[0].Spawn(probe, impl)
	c := clientOn(nodes[1], clientLOID)
	ra := loid.NewNoKey(400, 1)
	c.SetEnv(security.EnvWith(ra, ra, clientLOID))
	c.AddBinding(binding.Forever(probe, nodes[0].Address()))
	if _, err := c.Call(probe, "Probe"); err != nil {
		t.Fatal(err)
	}
	env := <-envCh
	if env.Responsible != ra || env.Calling != clientLOID {
		t.Errorf("env = %+v", env)
	}
}

func TestConcurrentCallsManyClients(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 5)
	spawnEcho(t, nodes[0], echoLOID)
	var wg sync.WaitGroup
	errs := make(chan error, 4*50)
	for i := 1; i < 5; i++ {
		c := clientOn(nodes[i], loid.NewNoKey(300, uint64(i)))
		c.AddBinding(binding.Forever(echoLOID, nodes[0].Address()))
		wg.Add(1)
		go func(c *Caller) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				res, err := c.Call(echoLOID, "Echo", []byte("x"))
				if err != nil {
					errs <- err
					return
				}
				if res.Code != wire.OK {
					errs <- res.Err()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCallOverTCP(t *testing.T) {
	tr := &transport.TCP{}
	n0, err := NewNode(tr, nil, "t0")
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := NewNode(tr, nil, "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	spawnEcho(t, n0, echoLOID)
	c := clientOn(n1, clientLOID)
	c.AddBinding(binding.Forever(echoLOID, n0.Address()))
	res, err := c.Call(echoLOID, "Echo", []byte("tcp"))
	if err != nil || res.Code != wire.OK {
		t.Fatalf("tcp call: %v %v", res, err)
	}
	out, _ := res.Result(0)
	if string(out) != "tcp" {
		t.Errorf("result = %q", out)
	}
}

func TestBehaviorDefaults(t *testing.T) {
	b := &Behavior{Iface: idl.NewInterface("B")}
	if s, err := b.SaveState(); err != nil || s != nil {
		t.Error("nil Save should yield empty state")
	}
	if err := b.RestoreState([]byte("x")); err != nil {
		t.Error("nil Restore should accept anything")
	}
	if _, err := b.Dispatch(&Invocation{Method: "zz"}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestOneWayToReplicatedAddress(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 3)
	got := make(chan uint64, 8)
	mkSink := func(tag uint64) *Behavior {
		return &Behavior{
			Iface: idl.NewInterface("Sink", idl.MethodSig{Name: "Put", OneWay: true}),
			Handlers: map[string]Handler{
				"Put": func(inv *Invocation) ([][]byte, error) {
					got <- tag
					return nil, nil
				},
			},
		}
	}
	sink := loid.NewNoKey(256, 60)
	nodes[0].Spawn(sink, mkSink(0))
	nodes[1].Spawn(sink, mkSink(1))
	addr := oa.Replicated(oa.SemAll, 0, nodes[0].Element(), nodes[1].Element())
	c := clientOn(nodes[2], clientLOID)
	c.AddBinding(binding.Forever(sink, addr))
	if err := c.OneWay(sink, "Put"); err != nil {
		t.Fatal(err)
	}
	// SemAll one-way reaches every replica.
	seen := map[uint64]bool{}
	for i := 0; i < 2; i++ {
		select {
		case tag := <-got:
			seen[tag] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("replica delivery %d never arrived", i)
		}
	}
	if !seen[0] || !seen[1] {
		t.Errorf("deliveries = %v, want both replicas", seen)
	}
}

func TestOneWayAddrBypassesResolution(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	got := make(chan struct{}, 1)
	impl := &Behavior{
		Iface: idl.NewInterface("Sink", idl.MethodSig{Name: "Put", OneWay: true}),
		Handlers: map[string]Handler{
			"Put": func(inv *Invocation) ([][]byte, error) {
				got <- struct{}{}
				return nil, nil
			},
		},
	}
	sink := loid.NewNoKey(256, 61)
	nodes[0].Spawn(sink, impl)
	c := clientOn(nodes[1], clientLOID) // no resolver, no cached binding
	if err := c.OneWayAddr(nodes[0].Address(), sink, "Put"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("OneWayAddr never delivered")
	}
	// By-LOID one-way without binding fails.
	if err := c.OneWay(loid.NewNoKey(256, 99), "Put"); err == nil {
		t.Error("unbound OneWay succeeded")
	}
}

func TestFutureDoneChannel(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	spawnEcho(t, nodes[0], echoLOID)
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(echoLOID, nodes[0].Address()))
	f, err := c.Invoke(echoLOID, "Echo", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-f.Done():
		if res.Code != wire.OK {
			t.Errorf("Done result = %v", res.Code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Done never fired")
	}
}

func TestResultHelpers(t *testing.T) {
	ok := &Result{Code: wire.OK, Results: [][]byte{[]byte("a")}}
	if ok.Err() != nil {
		t.Error("OK result has error")
	}
	if _, err := ok.Result(1); err == nil {
		t.Error("missing result index accepted")
	}
	bad := &Result{Code: wire.ErrDenied, ErrText: "no"}
	if bad.Err() == nil {
		t.Error("denied result has no error")
	}
	if _, err := bad.Result(0); err == nil {
		t.Error("Result on error reply succeeded")
	}
	if !IsCode(bad.Err(), wire.ErrDenied) || IsCode(bad.Err(), wire.ErrApp) {
		t.Error("IsCode misclassified")
	}
	if IsCode(nil, wire.ErrApp) {
		t.Error("IsCode(nil) true")
	}
	// Error strings mention the code.
	if s := bad.Err().Error(); !strings.Contains(s, "denied") || !strings.Contains(s, "no") {
		t.Errorf("error string = %q", s)
	}
	empty := &Result{Code: wire.ErrUnavailable}
	if s := empty.Err().Error(); !strings.Contains(s, "unavailable") {
		t.Errorf("error string = %q", s)
	}
}

func TestCallerAccessors(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 1)
	c := NewCaller(nodes[0], clientLOID, nil)
	if c.Self() != clientLOID {
		t.Error("Self wrong")
	}
	if c.Env().Calling != clientLOID {
		t.Error("default env wrong")
	}
	r := newMapResolver()
	c.SetResolver(r)
	cache := binding.NewCache(4)
	c.SetCache(cache)
	if c.Cache() != cache {
		t.Error("SetCache not applied")
	}
}

func TestNodeGarbageCounter(t *testing.T) {
	f := transport.NewFabric(nil)
	defer f.Close()
	reg := metrics.NewRegistry()
	n0, _ := NewNode(f, reg, "g0")
	defer n0.Close()
	n1, _ := NewNode(f, reg, "g1")
	defer n1.Close()
	// Raw garbage straight to the endpoint.
	if err := n1.send(n0.Element(), []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter("node/g0/garbage").Value() == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("garbage never counted")
}

func TestObjectMandatoryInterfaceStable(t *testing.T) {
	om := ObjectMandatory()
	for _, m := range []string{"Ping", "Iam", "MayI", "GetInterface", "SaveState", "RestoreState"} {
		if !om.Has(m) {
			t.Errorf("object-mandatory missing %s", m)
		}
	}
	if om.Len() != 6 {
		t.Errorf("object-mandatory has %d methods", om.Len())
	}
}

// TestReplicationDeadReplicaFastErrorDoesNotWin: a killed replica's
// node answers ErrNoSuchObject almost instantly, typically before the
// live replica's real reply. Under SemAll the fast failure must not
// defeat the slower success.
func TestReplicationDeadReplicaFastErrorDoesNotWin(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 3)
	// Replica on node 0 is dead (never spawned — its node answers
	// no-such-object immediately). Replica on node 1 is alive but slow.
	slowImpl := &Behavior{
		Iface: idl.NewInterface("Slow", idl.MethodSig{Name: "Work"}),
		Handlers: map[string]Handler{
			"Work": func(inv *Invocation) ([][]byte, error) {
				time.Sleep(30 * time.Millisecond)
				return [][]byte{[]byte("alive")}, nil
			},
		},
	}
	rep := loid.NewNoKey(256, 80)
	if _, err := nodes[1].Spawn(rep, slowImpl); err != nil {
		t.Fatal(err)
	}
	addr := oa.Replicated(oa.SemAll, 0, nodes[0].Element(), nodes[1].Element())
	c := clientOn(nodes[2], clientLOID)
	c.MaxRefresh = 0
	c.AddBinding(binding.Forever(rep, addr))
	for i := 0; i < 10; i++ {
		res, err := c.Call(rep, "Work")
		if err != nil {
			t.Fatal(err)
		}
		if res.Code != wire.OK {
			t.Fatalf("iteration %d: dead replica's error won: %v %s", i, res.Code, res.ErrText)
		}
	}
}

// TestReplicationAllDeadStillFails: when every replica is gone the
// caller gets a definitive failure, not a hang.
func TestReplicationAllDeadStillFails(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 3)
	rep := loid.NewNoKey(256, 81)
	addr := oa.Replicated(oa.SemAll, 0, nodes[0].Element(), nodes[1].Element())
	c := clientOn(nodes[2], clientLOID)
	c.MaxRefresh = 0
	c.Timeout = 500 * time.Millisecond
	c.AddBinding(binding.Forever(rep, addr))
	start := time.Now()
	res, err := c.Call(rep, "Work")
	if err != nil {
		t.Fatal(err)
	}
	if res.Code == wire.OK {
		t.Fatal("call succeeded with no replicas")
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("all-dead failure took %v", time.Since(start))
	}
}
