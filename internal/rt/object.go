package rt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/idl"
	"repro/internal/loid"
	"repro/internal/metrics"
	"repro/internal/security"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Object is the runtime handle of one active Legion object: its LOID,
// its behaviour, its security policy, and its mailbox. Methods execute
// sequentially on the object's own goroutine; the mailbox accepts
// messages in any order while a method runs (§2).
type Object struct {
	node        *Node
	self        loid.LOID
	impl        Impl
	policy      security.Policy
	label       string
	caller      *Caller
	concurrency int

	// inline marks the object for inline dispatch (WithInlineDispatch):
	// requests run on the delivering goroutine instead of being handed
	// to the mailbox.
	inline bool
	// dmu serializes dispatch for single-worker objects whose methods
	// may run off the mailbox goroutine (inline dispatch, co-resident
	// bypass), preserving the one-method-at-a-time model.
	dmu sync.Mutex

	// cReq is the interned "req/<label>" counter (nil when unlabeled),
	// so serving a request never builds a metric name string.
	cReq *metrics.Counter

	// muts counts dispatches that may have changed the object's state
	// (application methods and RestoreState, not runtime reads like
	// Ping or SaveState). Checkpointers compare it across rounds to
	// skip idle objects.
	muts atomic.Uint64

	mailbox chan *wire.Frame
	done    chan struct{}
	once    sync.Once
}

// SpawnOption configures an object at spawn time.
type SpawnOption func(*Object)

// WithPolicy installs the object's MayI policy (default: allow all —
// "these functions may default to empty for the case of no security",
// §2.4).
func WithPolicy(p security.Policy) SpawnOption {
	return func(o *Object) { o.policy = p }
}

// WithLabel names the object in metrics; each served request increments
// the counter "req/<label>".
func WithLabel(label string) SpawnOption {
	return func(o *Object) { o.label = label }
}

// WithCaller installs a pre-configured communication layer (binding
// cache size, resolver, timeouts).
func WithCaller(c *Caller) SpawnOption {
	return func(o *Object) { o.caller = c }
}

// WithConcurrency runs n dispatch workers instead of one. The default
// single worker gives user objects the simple sequential model; core
// service objects (classes, Magistrates, Binding Agents, Host Objects)
// are internally synchronized and run concurrently so that a service
// call that itself invokes another object does not stall the mailbox —
// without this, mutually-waiting service objects could distributedly
// deadlock. The Impl must be safe for concurrent Dispatch.
func WithConcurrency(n int) SpawnOption {
	return func(o *Object) { o.concurrency = n }
}

// WithInlineDispatch opts the object into inline dispatch: incoming
// requests execute directly on the delivering goroutine — the sender's
// own goroutine for co-resident and in-memory-fabric callers, the read
// loop for TCP — instead of being queued to the mailbox. This removes
// every goroutine handoff from the invocation path and is what makes a
// cached-binding call "as close to a raw message send as possible"
// (§5.2.1).
//
// The option is ONLY for leaf methods: fast, non-blocking handlers
// that invoke no other objects. A method that blocks holds the
// delivering goroutine hostage — the caller's timeout machinery sits
// below it on the same stack and cannot fire — and a method that makes
// nested calls can deadlock the transport (its reply may need the very
// read loop the method is occupying). Single-worker objects keep their
// sequential model: inline dispatches are serialized with a mutex.
// Objects spawned with WithConcurrency run inline dispatches
// concurrently, exactly like their mailbox workers would.
func WithInlineDispatch() SpawnOption {
	return func(o *Object) { o.inline = true }
}

// LOID returns the object's name.
func (o *Object) LOID() loid.LOID { return o.self }

// Node returns the hosting node.
func (o *Object) Node() *Node { return o.node }

// Impl returns the object's behaviour (used by co-located runtime
// components such as Host Objects during deactivation).
func (o *Object) Impl() Impl { return o.impl }

// Caller returns the object's communication layer.
func (o *Object) Caller() *Caller { return o.caller }

// Mutations returns the object's dirty clock: the count of dispatched
// calls that may have changed its state. A checkpointer that remembers
// the value from its last round can tell an idle object (equal clock —
// nothing to save) from a dirty one without touching the Impl.
func (o *Object) Mutations() uint64 { return o.muts.Load() }

// QueueLen is the object's current mailbox backlog — one term of the
// Host Object's load vector.
func (o *Object) QueueLen() int { return len(o.mailbox) }

// SetPolicy replaces the object's MayI policy at run time.
func (o *Object) SetPolicy(p security.Policy) { o.policy = p }

// loop is one dispatch worker; Spawn starts o.concurrency of them.
func (o *Object) loop() {
	for {
		select {
		case f := <-o.mailbox:
			o.serve(f)
			f.Close()
		case <-o.done:
			return
		}
	}
}

// serveInline runs one request on the delivering goroutine (see
// WithInlineDispatch). Single-worker objects are serialized with the
// dispatch mutex so inline deliveries from concurrent senders keep the
// one-method-at-a-time model.
func (o *Object) serveInline(f *wire.Frame) {
	if o.concurrency <= 1 {
		o.dmu.Lock()
		defer o.dmu.Unlock()
	}
	o.serve(f)
}

// serve runs one framed request. The frame is borrowed: its bytes stay
// valid for the duration of the call (including marshalling the reply,
// which copies any results that alias the request), and the caller
// closes it after serve returns.
func (o *Object) serve(f *wire.Frame) {
	o.node.served.Add(1)
	if o.cReq != nil {
		o.cReq.Inc()
	}
	method := f.Method()
	tid := f.TraceID()
	// An installed observer gets per-method serve latency; when absent
	// (the default, and all benchmarks) the cost is one atomic load.
	var ob Observer
	var start time.Time
	if p := o.node.observer.Load(); p != nil {
		ob = *p
		start = o.node.now()
	}
	// A traced request grows a serve span covering the whole method
	// execution on this object; children of a sampled trace are always
	// recorded so the trace is complete across hops. Untraced messages
	// pay only the TraceID comparison.
	var span *trace.Span
	if tid != 0 {
		span = o.node.tracer.Load().Child(
			trace.SpanContext{TraceID: tid, SpanID: f.SpanID()},
			"serve", method, o.component())
	}
	// A request whose propagated deadline already expired is not worth
	// running: the caller has given up, and the answer — if one is
	// still listening — is definitive either way.
	if dl := f.Deadline(); dl != 0 && o.node.now().UnixNano() > dl {
		if span != nil {
			span.Event("deadline", "expired before dispatch")
			span.Finish(wire.ErrDeadlineExceeded.String())
		}
		if f.Kind == wire.KindRequest && f.HasReplyTo() {
			o.node.replyFrame(f, wire.ErrDeadlineExceeded, "deadline expired before dispatch", nil)
		}
		if ob != nil {
			ob.ServeDone(o.component(), method, o.node.since(start), tid)
		}
		return
	}
	env := f.Env()
	code, errText, results := o.safeDispatch(method, &env, f.ArgViews(nil), span)
	if span != nil {
		if errText != "" {
			span.Event("error", errText)
		}
		span.Finish(code.String())
	}
	if f.Kind == wire.KindRequest && f.HasReplyTo() {
		o.node.replyFrame(f, code, errText, results)
	}
	if ob != nil {
		ob.ServeDone(o.component(), method, o.node.since(start), tid)
	}
}

// serveLocal is the co-resident bypass: the caller's goroutine runs
// the method directly — no marshal, no transport, no correlation id —
// and builds the Result in place. Semantics mirror serve: per-object
// metrics, the serve span, deadline rejection, MayI, and panic
// confinement all apply identically.
func (o *Object) serveLocal(method string, env *wire.Env, args [][]byte) *Result {
	if o.concurrency <= 1 {
		o.dmu.Lock()
		defer o.dmu.Unlock()
	}
	o.node.served.Add(1)
	if o.cReq != nil {
		o.cReq.Inc()
	}
	var ob Observer
	var start time.Time
	if p := o.node.observer.Load(); p != nil {
		ob = *p
		start = o.node.now()
	}
	var span *trace.Span
	if env.TraceID != 0 {
		span = o.node.tracer.Load().Child(
			trace.SpanContext{TraceID: env.TraceID, SpanID: env.SpanID},
			"serve", method, o.component())
	}
	if env.Deadline != 0 && o.node.now().UnixNano() > env.Deadline {
		if span != nil {
			span.Event("deadline", "expired before dispatch")
			span.Finish(wire.ErrDeadlineExceeded.String())
		}
		if ob != nil {
			ob.ServeDone(o.component(), method, o.node.since(start), env.TraceID)
		}
		return &Result{Code: wire.ErrDeadlineExceeded, ErrText: "deadline expired before dispatch", From: o.node.Element()}
	}
	code, errText, results := o.safeDispatch(method, env, args, span)
	if span != nil {
		if errText != "" {
			span.Event("error", errText)
		}
		span.Finish(code.String())
	}
	if ob != nil {
		ob.ServeDone(o.component(), method, o.node.since(start), env.TraceID)
	}
	return &Result{Code: code, ErrText: errText, Results: results, From: o.node.Element()}
}

// component names this object in trace spans: its metric label when it
// has one, else the hosting node's name.
func (o *Object) component() string {
	if o.label != "" {
		return o.label
	}
	return o.node.name
}

// safeDispatch runs dispatch with panic confinement: a panicking
// method is reported to the caller as an application error and counted
// as an object exception, rather than taking the whole node down —
// the runtime-level half of the Host Object's duty to "report object
// exceptions" (§2.3).
func (o *Object) safeDispatch(method string, env *wire.Env, args [][]byte, span *trace.Span) (code wire.Code, errText string, results [][]byte) {
	defer func() {
		if r := recover(); r != nil {
			o.node.cExcept.Inc()
			code, errText, results = wire.ErrApp, fmt.Sprintf("object exception in %s: %v", method, r), nil
		}
	}()
	return o.dispatch(method, env, args, span)
}

// dispatch enforces MayI, answers runtime-provided member functions,
// and routes the rest to the Impl. args are borrowed views of the
// request frame, valid until the reply has been marshalled.
func (o *Object) dispatch(method string, env *wire.Env, args [][]byte, span *trace.Span) (wire.Code, string, [][]byte) {
	// Every method invocation is performed in the (RA, SA, CA)
	// environment and checked by the object's MayI (§2.4). MayI itself
	// is always answerable so callers can probe their own access.
	if o.policy != nil && method != "MayI" {
		if err := o.policy.MayI(*env, method); err != nil {
			return wire.ErrDenied, err.Error(), nil
		}
	}
	switch method {
	case "Ping":
		return wire.OK, "", nil
	case "Iam":
		return wire.OK, "", [][]byte{security.Identity{LOID: o.self}.Encode()}
	case "MayI":
		// MayI(method) returns whether the calling environment could
		// invoke the named method.
		if len(args) != 1 {
			return wire.ErrBadRequest, "MayI needs one argument", nil
		}
		if o.policy != nil {
			if err := o.policy.MayI(*env, wire.AsString(args[0])); err != nil {
				return wire.OK, "", [][]byte{wire.Bool(false), wire.String(err.Error())}
			}
		}
		return wire.OK, "", [][]byte{wire.Bool(true), wire.String("")}
	case "GetInterface":
		return wire.OK, "", [][]byte{o.FullInterface().Marshal(nil)}
	case "SaveState":
		state, err := o.impl.SaveState()
		if err != nil {
			return wire.ErrApp, err.Error(), nil
		}
		return wire.OK, "", [][]byte{state}
	case "RestoreState":
		if len(args) != 1 {
			return wire.ErrBadRequest, "RestoreState needs one argument", nil
		}
		// The state outlives the frame the argument aliases; copy it
		// before handing it to the Impl.
		state := append([]byte(nil), args[0]...)
		if err := o.impl.RestoreState(state); err != nil {
			return wire.ErrApp, err.Error(), nil
		}
		o.muts.Add(1)
		return wire.OK, "", nil
	}
	o.muts.Add(1)
	inv := &Invocation{Method: method, Args: args, Env: *env, Obj: o, Span: span}
	if env.Deadline != 0 {
		inv.Deadline = time.Unix(0, env.Deadline)
	}
	if span != nil {
		inv.Trace = span.Context()
	} else if env.TraceID != 0 {
		// No tracer on this node: keep propagating the caller's
		// identity so downstream hops still join the trace.
		inv.Trace = trace.SpanContext{
			TraceID:      env.TraceID,
			SpanID:       env.SpanID,
			ParentSpanID: env.ParentSpanID,
		}
	}
	results, err := o.impl.Dispatch(inv)
	if err != nil {
		if _, ok := err.(*NoSuchMethodError); ok {
			return wire.ErrNoSuchMethod, err.Error(), nil
		}
		return wire.ErrApp, err.Error(), results
	}
	return wire.OK, "", results
}

// FullInterface is the object's complete exported interface: the
// object-mandatory member functions provided by the runtime plus the
// Impl's own (§2.1: "all Legion objects export a common set of
// object-mandatory member functions").
func (o *Object) FullInterface() *idl.Interface {
	full := ObjectMandatory().Clone("")
	if ifc := o.impl.Interface(); ifc != nil {
		full.Name = ifc.Name
		// The Impl may redefine mandatory functions; its signatures win.
		_ = full.Merge(ifc, idl.ConflictOverride)
	}
	return full
}

func (o *Object) stop() {
	o.once.Do(func() {
		close(o.done)
		// Queued frames hold pooled buffers the workers will never
		// drain; release them now that no worker will race the drain.
	drain:
		for {
			select {
			case f := <-o.mailbox:
				f.Close()
			default:
				break drain
			}
		}
		if s, ok := o.impl.(Stopper); ok {
			s.Stop()
		}
	})
}

var objectMandatoryOnce sync.Once
var objectMandatory *idl.Interface

// ObjectMandatory returns the interface every Legion object exports
// (§2.1): MayI, Iam, Ping, GetInterface, SaveState, RestoreState.
func ObjectMandatory() *idl.Interface {
	objectMandatoryOnce.Do(func() {
		objectMandatory = idl.NewInterface("LegionObject",
			idl.MethodSig{Name: "Ping"},
			idl.MethodSig{Name: "Iam", Returns: []idl.Param{{Name: "identity", Type: idl.TLOID}}},
			idl.MethodSig{Name: "MayI",
				Params:  []idl.Param{{Name: "method", Type: idl.TString}},
				Returns: []idl.Param{{Name: "allowed", Type: idl.TBool}, {Name: "reason", Type: idl.TString}}},
			idl.MethodSig{Name: "GetInterface", Returns: []idl.Param{{Name: "interface", Type: idl.TBytes}}},
			idl.MethodSig{Name: "SaveState", Returns: []idl.Param{{Name: "state", Type: idl.TBytes}}},
			idl.MethodSig{Name: "RestoreState", Params: []idl.Param{{Name: "state", Type: idl.TBytes}}},
		)
	})
	return objectMandatory
}
