// Package rt is the Legion object runtime: it gives each active object
// an address-space-disjoint existence (a mailbox and a dispatch
// goroutine reachable only through a transport endpoint), implements
// non-blocking method invocation with futures (§2), provides the
// object-mandatory member functions (§2.1: MayI, Iam, SaveState,
// RestoreState, GetInterface), and contains the "Legion-aware
// communication layer" of §4.1.2 — a per-object binding cache with
// stale-binding detection and refresh (§4.1.4).
package rt

import (
	"context"
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/idl"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Invocation describes one incoming method call as seen by an object
// implementation.
type Invocation struct {
	Method string
	// Args are borrowed views into the request's transport buffer:
	// valid only until the handler returns (results may alias them —
	// the reply is marshaled before the frame is released). A handler
	// that stores an argument past return, or hands it to another
	// goroutine, must copy it first.
	Args [][]byte
	// Env is the security environment triple the call is performed in
	// (§2.4).
	Env wire.Env
	// Obj is the runtime handle of the receiving object; handlers use
	// it to reach their own LOID and Caller.
	Obj *Object
	// Deadline is the caller's propagated absolute deadline (zero when
	// the caller set none). Handlers that invoke other objects should
	// pass inv.Ctx() to CallCtx so nested hops inherit the remaining
	// budget instead of arming independent full timers.
	Deadline time.Time
	// Trace is the invocation's distributed-tracing identity: the
	// serving span's context when this node records spans, otherwise
	// the caller's identity straight from the wire envelope (so a node
	// without a tracer still propagates the trace downstream). Zero
	// when the invocation is untraced.
	Trace trace.SpanContext
	// Span is the serve span covering this method execution (nil when
	// untraced or unsampled); handlers may attach events to it.
	Span *trace.Span
}

// Ctx returns a context carrying the invocation's propagated deadline
// and trace identity (context.Background-equivalent when neither was
// set). It is timer-free and needs no cancel: both are immutable state,
// not resources.
func (inv *Invocation) Ctx() context.Context {
	c := invCtx{t: inv.Deadline, sc: inv.Trace}
	if inv.Obj != nil {
		c.clk = inv.Obj.node.clk // nil on the wall clock
	}
	return c
}

// invCtx is an allocation-light context.Context carrying only an
// absolute deadline and a trace identity. Unlike context.WithDeadline
// it arms no timer and has nothing to cancel, so it can be minted per
// invocation for free.
type invCtx struct {
	t   time.Time
	sc  trace.SpanContext
	clk clock.Clock // nil = wall; set when the serving node runs virtual
}

func (d invCtx) Deadline() (time.Time, bool) { return d.t, !d.t.IsZero() }
func (d invCtx) Done() <-chan struct{}       { return nil }
func (d invCtx) Value(any) any               { return nil }
func (d invCtx) Err() error {
	if d.t.IsZero() {
		return nil
	}
	now := time.Now()
	if d.clk != nil {
		now = d.clk.Now()
	}
	if !now.Before(d.t) {
		return context.DeadlineExceeded
	}
	return nil
}

// TraceSpanContext lets trace.FromContext read the carried identity
// without a Value-chain walk.
func (d invCtx) TraceSpanContext() trace.SpanContext { return d.sc }

// Arg returns argument i or an error mentioning the method, keeping
// handler argument unpacking terse.
func (inv *Invocation) Arg(i int) ([]byte, error) {
	if i >= len(inv.Args) {
		return nil, fmt.Errorf("%s: missing argument %d (have %d)", inv.Method, i, len(inv.Args))
	}
	return inv.Args[i], nil
}

// Handler implements one member function. A non-nil error is reported
// to the caller as an application error (wire.ErrApp). The returned
// result slices may alias inv.Args (zero-copy echo is legal): the
// runtime marshals the reply before releasing the request frame.
type Handler func(inv *Invocation) ([][]byte, error)

// Impl is the behaviour of a Legion object. The runtime supplies the
// object-mandatory member functions around it: MayI is enforced before
// Dispatch; Iam, Ping and GetInterface are answered from the runtime;
// SaveState/RestoreState are routed to the Impl.
type Impl interface {
	// Interface describes the exported member functions.
	Interface() *idl.Interface
	// Dispatch runs one method. Unknown methods must return
	// ErrNoSuchMethod (wrapped or direct).
	Dispatch(inv *Invocation) ([][]byte, error)
	// SaveState serializes the object's state for an Object Persistent
	// Representation (§3.1.1).
	SaveState() ([]byte, error)
	// RestoreState reinitializes the object from a SaveState blob.
	RestoreState(state []byte) error
}

// Binder is an optional Impl extension: implementations that need to
// invoke other objects receive their runtime handle at spawn time.
type Binder interface {
	Bind(o *Object)
}

// Stopper is an optional Impl extension: implementations with
// background resources are told when their object is torn down.
type Stopper interface {
	Stop()
}

// ErrNoSuchMethod is returned by Dispatch for unknown methods.
type NoSuchMethodError struct{ Method string }

func (e *NoSuchMethodError) Error() string { return fmt.Sprintf("no such method %q", e.Method) }

// Behavior is a map-based Impl for objects defined as a set of handler
// functions. Save/Restore may be nil for stateless objects.
type Behavior struct {
	Iface    *idl.Interface
	Handlers map[string]Handler
	Save     func() ([]byte, error)
	Restore  func(state []byte) error
	// OnBind, if set, receives the runtime handle at spawn time.
	OnBind func(o *Object)
}

// Interface implements Impl.
func (b *Behavior) Interface() *idl.Interface { return b.Iface }

// Dispatch implements Impl.
func (b *Behavior) Dispatch(inv *Invocation) ([][]byte, error) {
	h, ok := b.Handlers[inv.Method]
	if !ok {
		return nil, &NoSuchMethodError{Method: inv.Method}
	}
	return h(inv)
}

// SaveState implements Impl.
func (b *Behavior) SaveState() ([]byte, error) {
	if b.Save == nil {
		return nil, nil
	}
	return b.Save()
}

// RestoreState implements Impl.
func (b *Behavior) RestoreState(state []byte) error {
	if b.Restore == nil {
		return nil
	}
	return b.Restore(state)
}

// Bind implements Binder.
func (b *Behavior) Bind(o *Object) {
	if b.OnBind != nil {
		b.OnBind(o)
	}
}
