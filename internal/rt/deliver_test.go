package rt

import (
	"testing"
	"time"

	"repro/internal/idl"
	"repro/internal/loid"
	"repro/internal/oa"
	"repro/internal/wire"
)

// TestDeliverVerdictReflectsLastWave is the regression test for a
// failover-bookkeeping bug: deliver carried the retryable Result of an
// earlier wave into later waves, so when wave 1 answered "no such
// object" and wave 2 then timed out without answering, the caller was
// told ErrNoSuchObject (binding definitively stale) instead of
// ErrUnavailable (replica unresponsive — retransmission may succeed).
// The verdict must describe the LAST wave attempted.
func TestDeliverVerdictReflectsLastWave(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 3)

	// Wave 1 target: a live node that does NOT host the object, so it
	// answers ErrNoSuchObject quickly.
	// Wave 2 target: hosts the object, but the method blocks past the
	// caller's timeout, so the wave ends with no reply at all.
	block := make(chan struct{})
	defer close(block)
	stuck := loid.NewNoKey(256, 77)
	impl := &Behavior{
		Iface: idl.NewInterface("Stuck", idl.MethodSig{Name: "Hang"}),
		Handlers: map[string]Handler{
			"Hang": func(inv *Invocation) ([][]byte, error) { <-block; return nil, nil },
		},
	}
	if _, err := nodes[1].Spawn(stuck, impl); err != nil {
		t.Fatal(err)
	}

	addr := oa.Replicated(oa.SemOrdered, 0, nodes[0].Element(), nodes[1].Element())
	c := clientOn(nodes[2], clientLOID)
	c.Timeout = 100 * time.Millisecond

	res, err := c.CallAddr(addr, stuck, "Hang")
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != wire.ErrUnavailable {
		t.Errorf("verdict Code = %v, want ErrUnavailable (wave 2 timed out); a wave-1 ErrNoSuchObject must not be the verdict", res.Code)
	}
	if res.Code == wire.ErrUnavailable && res.ErrText != ErrTimeout.Error() {
		t.Errorf("verdict ErrText = %q, want timeout", res.ErrText)
	}
}

// TestDeliverDefinitiveReplyBeatsLaterWaves pins the companion
// property: a definitive (non-retryable) reply in an early wave returns
// immediately and later waves are never contacted.
func TestDeliverDefinitiveReplyBeatsLaterWaves(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 3)
	impl := spawnEcho(t, nodes[0], echoLOID)
	addr := oa.Replicated(oa.SemOrdered, 0, nodes[0].Element(), nodes[1].Element())
	c := clientOn(nodes[2], clientLOID)
	res, err := c.CallAddr(addr, echoLOID, "Echo", []byte("hi"))
	if err != nil || res.Code != wire.OK {
		t.Fatalf("call: %v %v", res, err)
	}
	impl.mu.Lock()
	calls := impl.calls
	impl.mu.Unlock()
	if calls != 1 {
		t.Errorf("echo served %d calls, want 1", calls)
	}
}
