package rt

import (
	"encoding/binary"
	"fmt"

	"repro/internal/idl"
)

// Composite combines several implementation parts into one object
// behaviour. It realizes the paper's run-time multiple inheritance
// (§2.1): a class defined by Derive() plus InheritFrom() calls produces
// instances "whose composition reflects the way the class was defined
// in the inheritance process" — here, an ordered list of parts, each
// contributing the methods its interface declares. The first part that
// exports a method handles it (first-base-wins resolution, matching
// idl.ConflictKeep merging).
type Composite struct {
	parts []Impl
	iface *idl.Interface
}

// NewComposite builds a composite over parts (at least one). The
// combined interface is the Keep-merge of the parts' interfaces in
// order.
func NewComposite(name string, parts ...Impl) (*Composite, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("rt: composite needs at least one part")
	}
	iface := idl.NewInterface(name)
	for _, p := range parts {
		if err := iface.Merge(p.Interface(), idl.ConflictKeep); err != nil {
			return nil, err
		}
	}
	return &Composite{parts: parts, iface: iface}, nil
}

// Interface implements Impl.
func (c *Composite) Interface() *idl.Interface { return c.iface }

// Parts returns the ordered implementation parts.
func (c *Composite) Parts() []Impl { return c.parts }

// Dispatch implements Impl: the first part whose interface exports the
// method serves it.
func (c *Composite) Dispatch(inv *Invocation) ([][]byte, error) {
	for _, p := range c.parts {
		if p.Interface().Has(inv.Method) {
			return p.Dispatch(inv)
		}
	}
	// Fall through to any part that accepts it dynamically (parts with
	// open-ended dispatch); otherwise report no such method.
	return nil, &NoSuchMethodError{Method: inv.Method}
}

// SaveState implements Impl: the composite state is the length-prefixed
// concatenation of the parts' states.
func (c *Composite) SaveState() ([]byte, error) {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(c.parts)))
	for i, p := range c.parts {
		s, err := p.SaveState()
		if err != nil {
			return nil, fmt.Errorf("rt: composite part %d: %w", i, err)
		}
		out = binary.BigEndian.AppendUint64(out, uint64(len(s)))
		out = append(out, s...)
	}
	return out, nil
}

// RestoreState implements Impl. An empty state leaves all parts at
// their initial state (fresh creation).
func (c *Composite) RestoreState(state []byte) error {
	if len(state) == 0 {
		return nil
	}
	if len(state) < 4 {
		return fmt.Errorf("rt: composite state too short")
	}
	n := binary.BigEndian.Uint32(state[:4])
	state = state[4:]
	if int(n) != len(c.parts) {
		return fmt.Errorf("rt: composite state has %d parts, impl has %d", n, len(c.parts))
	}
	for i := 0; i < int(n); i++ {
		if len(state) < 8 {
			return fmt.Errorf("rt: composite state truncated at part %d", i)
		}
		sz := binary.BigEndian.Uint64(state[:8])
		state = state[8:]
		if uint64(len(state)) < sz {
			return fmt.Errorf("rt: composite state part %d truncated", i)
		}
		if err := c.parts[i].RestoreState(state[:sz]); err != nil {
			return fmt.Errorf("rt: composite part %d: %w", i, err)
		}
		state = state[sz:]
	}
	if len(state) != 0 {
		return fmt.Errorf("rt: composite state has %d trailing bytes", len(state))
	}
	return nil
}

// Bind implements Binder by forwarding to every part that wants it.
func (c *Composite) Bind(o *Object) {
	for _, p := range c.parts {
		if b, ok := p.(Binder); ok {
			b.Bind(o)
		}
	}
}

// Stop implements Stopper by forwarding to every part that wants it.
func (c *Composite) Stop() {
	for _, p := range c.parts {
		if s, ok := p.(Stopper); ok {
			s.Stop()
		}
	}
}
