package rt

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/binding"
	"repro/internal/health"
	"repro/internal/idl"
	"repro/internal/loid"
	"repro/internal/metrics"
	"repro/internal/oa"
	"repro/internal/wire"
)

// TestDeadlinePropagatesToNestedHop is the acceptance test for
// deadline propagation: a client calls a proxy object with a bounded
// budget; the proxy makes a nested call to an inner object using
// inv.Ctx(). The inner hop must observe the CLIENT's absolute
// deadline — a remaining budget strictly under its own 2s default
// timer — not a fresh full timer of its own.
func TestDeadlinePropagatesToNestedHop(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 3)

	innerLOID := loid.NewNoKey(256, 41)
	proxyLOID := loid.NewNoKey(256, 42)

	var innerDeadline atomic.Int64  // Env.Deadline as seen by the inner hop
	var innerRemaining atomic.Int64 // nanoseconds of budget left at dispatch
	inner := &Behavior{
		Iface: idl.NewInterface("Inner", idl.MethodSig{Name: "Probe"}),
		Handlers: map[string]Handler{
			"Probe": func(inv *Invocation) ([][]byte, error) {
				innerDeadline.Store(inv.Env.Deadline)
				if !inv.Deadline.IsZero() {
					innerRemaining.Store(int64(time.Until(inv.Deadline)))
				}
				return nil, nil
			},
		},
	}
	if _, err := nodes[1].Spawn(innerLOID, inner); err != nil {
		t.Fatal(err)
	}

	proxy := &Behavior{
		Iface: idl.NewInterface("Proxy", idl.MethodSig{Name: "Relay"}),
		Handlers: map[string]Handler{
			"Relay": func(inv *Invocation) ([][]byte, error) {
				// The nested hop inherits the remaining budget via the
				// invocation context.
				res, err := inv.Obj.Caller().CallCtx(inv.Ctx(), innerLOID, "Probe")
				if err != nil {
					return nil, err
				}
				return nil, res.Err()
			},
		},
	}
	po, err := nodes[0].Spawn(proxyLOID, proxy)
	if err != nil {
		t.Fatal(err)
	}
	po.Caller().AddBinding(binding.Forever(innerLOID, nodes[1].Address()))

	c := clientOn(nodes[2], clientLOID)
	c.AddBinding(binding.Forever(proxyLOID, nodes[0].Address()))

	budget := 1500 * time.Millisecond
	ctx := invCtx{t: time.Now().Add(budget)}
	res, err := c.CallCtx(ctx, proxyLOID, "Relay")
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != wire.OK {
		t.Fatalf("Relay failed: %v %s", res.Code, res.ErrText)
	}

	gotDeadline := innerDeadline.Load()
	if gotDeadline == 0 {
		t.Fatal("inner hop saw no propagated deadline")
	}
	if want := ctx.t.UnixNano(); gotDeadline != want {
		t.Errorf("inner hop deadline = %d, want the client's %d (propagated verbatim)", gotDeadline, want)
	}
	remaining := time.Duration(innerRemaining.Load())
	if remaining <= 0 {
		t.Fatal("inner hop had no remaining budget")
	}
	if remaining >= 2*time.Second {
		t.Errorf("inner hop remaining budget = %v, want < 2s (must inherit, not arm a fresh timer)", remaining)
	}
	if remaining > budget {
		t.Errorf("inner hop remaining budget %v exceeds the client's %v", remaining, budget)
	}
}

// TestCallCtxDeadlineBoundsWait: with a context deadline shorter than
// the per-wave Timeout, an unresponsive target must yield a definitive
// ErrDeadlineExceeded when the budget expires — not after the full
// wave timer, and with no retries burned on a spent budget.
func TestCallCtxDeadlineBoundsWait(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	block := make(chan struct{})
	defer close(block)
	hangLOID := loid.NewNoKey(256, 43)
	impl := &Behavior{
		Iface: idl.NewInterface("Stuck", idl.MethodSig{Name: "Hang"}),
		Handlers: map[string]Handler{
			"Hang": func(inv *Invocation) ([][]byte, error) { <-block; return nil, nil },
		},
	}
	if _, err := nodes[0].Spawn(hangLOID, impl); err != nil {
		t.Fatal(err)
	}
	c := clientOn(nodes[1], clientLOID)
	c.Timeout = 2 * time.Second
	c.AddBinding(binding.Forever(hangLOID, nodes[0].Address()))

	start := time.Now()
	ctx := invCtx{t: time.Now().Add(120 * time.Millisecond)}
	res, err := c.CallCtx(ctx, hangLOID, "Hang")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != wire.ErrDeadlineExceeded {
		t.Fatalf("Code = %v, want ErrDeadlineExceeded", res.Code)
	}
	if elapsed > time.Second {
		t.Errorf("call took %v; the 120ms deadline should have bounded it well under the 2s wave timer", elapsed)
	}
}

// TestServerRejectsExpiredDeadline: a request whose deadline expired
// while it sat in the mailbox is answered ErrDeadlineExceeded without
// running the method — the caller gave up, so the work is waste.
func TestServerRejectsExpiredDeadline(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	block := make(chan struct{})
	var calls atomic.Int32
	busyLOID := loid.NewNoKey(256, 44)
	impl := &Behavior{
		Iface: idl.NewInterface("Busy", idl.MethodSig{Name: "Work"}),
		Handlers: map[string]Handler{
			"Work": func(inv *Invocation) ([][]byte, error) {
				calls.Add(1)
				<-block
				return nil, nil
			},
		},
	}
	if _, err := nodes[0].Spawn(busyLOID, impl); err != nil { // default: 1 worker
		t.Fatal(err)
	}
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(busyLOID, nodes[0].Address()))

	// Occupy the single dispatch worker…
	f1, err := c.Invoke(busyLOID, "Work")
	if err != nil {
		t.Fatal(err)
	}
	// …then queue a request with a short deadline behind it.
	ctx := invCtx{t: time.Now().Add(80 * time.Millisecond)}
	f2, err := c.InvokeCtx(ctx, busyLOID, "Work")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // let the queued deadline expire
	close(block)

	res2, err := f2.Wait(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Code != wire.ErrDeadlineExceeded {
		t.Errorf("queued call Code = %v, want ErrDeadlineExceeded", res2.Code)
	}
	if res1, err := f1.Wait(2 * time.Second); err != nil || res1.Code != wire.OK {
		t.Fatalf("first call: %v, %v", res1, err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("handler ran %d times, want 1 (expired request must not dispatch)", got)
	}
}

// TestRetryBudgetBoundsRetries: with an exhausted token bucket, a
// failing call stops after its first attempt instead of burning
// MaxAttempts against a dead destination.
func TestRetryBudgetBoundsRetries(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 1)
	r := newMapResolver()
	dead := oa.Single(oa.MemElement(99999)) // no such endpoint: sends fail instantly
	target := loid.NewNoKey(256, 45)
	r.set(binding.Forever(target, dead))

	c := NewCaller(nodes[0], clientLOID, r)
	c.Timeout = 100 * time.Millisecond
	c.Retry = RetryPolicy{MaxAttempts: 6}
	c.Budget = NewRetryBudget(1, 0) // one retry token, no refill

	res, err := c.Call(target, "Echo")
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != wire.ErrUnavailable {
		t.Fatalf("Code = %v, want ErrUnavailable", res.Code)
	}
	r.mu.Lock()
	refreshes := r.refreshs
	r.mu.Unlock()
	if refreshes != 1 {
		t.Errorf("resolver refreshed %d times, want 1 (budget allowed one retry of six)", refreshes)
	}
}

// TestBackoffFullJitter pins the backoff envelope: ceiling doubles
// from BaseBackoff up to MaxBackoff, the draw is uniform in
// [0, ceiling], and an unset BaseBackoff disables sleeping entirely.
func TestBackoffFullJitter(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	maxDraw := func(n int) int { return n - 1 } // deterministic: always the ceiling
	for retry, want := range []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		40 * time.Millisecond, // capped
	} {
		if got := p.backoff(retry, maxDraw); got != want {
			t.Errorf("backoff(retry=%d) ceiling = %v, want %v", retry, got, want)
		}
	}
	zeroDraw := func(n int) int { return 0 }
	if got := p.backoff(3, zeroDraw); got != 0 {
		t.Errorf("full jitter must admit 0; got %v", got)
	}
	none := RetryPolicy{}
	if got := none.backoff(5, maxDraw); got != 0 {
		t.Errorf("zero policy must not sleep; got %v", got)
	}
}

// TestHealthBreakerSkipsDeadReplica: a dead replica inside a SemAll
// wave fails on every call; once the breaker opens, subsequent calls
// drop it from the wave (counted in health/skipped) and are served by
// the live replica alone.
func TestHealthBreakerSkipsDeadReplica(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	spawnEcho(t, nodes[0], echoLOID)
	deadElem := oa.MemElement(88888) // never existed: sends fail instantly

	// SemAll: both replicas share one wave, so ordering cannot route
	// around the dead one — only the breaker can.
	addr := oa.Replicated(oa.SemAll, 0, deadElem, nodes[0].Element())

	reg := metrics.NewRegistry()
	tr := health.NewTracker(health.Config{FailureThreshold: 3, OpenDuration: time.Minute}, reg)
	c := clientOn(nodes[1], clientLOID)
	c.Timeout = 200 * time.Millisecond
	c.SetHealth(tr)

	for i := 0; i < 6; i++ {
		res, err := c.CallAddr(addr, echoLOID, "Echo", []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if res.Code != wire.OK {
			t.Fatalf("call %d: %v %s", i, res.Code, res.ErrText)
		}
	}
	if st := tr.StateOf(deadElem); st != health.Open {
		t.Errorf("dead replica breaker = %v, want open after repeated send failures", st)
	}
	if st := tr.StateOf(nodes[0].Element()); st != health.Closed {
		t.Errorf("live replica breaker = %v, want closed", st)
	}
	if skipped := reg.Counter("health/skipped").Value(); skipped == 0 {
		t.Error("open breaker never skipped the dead replica")
	}

	// Wave ordering: with SemOrdered, the sick replica's wave moves
	// behind the healthy one, so calls stop paying for it at all.
	ordered := oa.Replicated(oa.SemOrdered, 0, deadElem, nodes[0].Element())
	res, err := c.CallAddr(ordered, echoLOID, "Echo", []byte("y"))
	if err != nil || res.Code != wire.OK {
		t.Fatalf("ordered call through health layer: %v %v", res, err)
	}
}
