package rt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/binding"
	"repro/internal/buf"
	"repro/internal/idl"
	"repro/internal/loid"
	"repro/internal/transport"
	"repro/internal/wire"
)

// borrowPayload builds a deterministic payload: an 8-byte seed header
// followed by n pattern bytes derived from the seed. The handler and
// the client both recompute the pattern, so any corruption from a
// prematurely recycled transport buffer shows up as a content mismatch
// even when -race stays quiet.
func borrowPayload(seed uint64, n int) []byte {
	p := make([]byte, 8+n)
	binary.BigEndian.PutUint64(p, seed)
	for i := 0; i < n; i++ {
		p[8+i] = byte(seed>>uint((i%8)*8)) ^ byte(i)
	}
	return p
}

func checkBorrowPayload(p []byte) error {
	if len(p) < 8 {
		return fmt.Errorf("short payload: %d bytes", len(p))
	}
	seed := binary.BigEndian.Uint64(p)
	for i, b := range p[8:] {
		if want := byte(seed>>uint((i%8)*8)) ^ byte(i); b != want {
			return fmt.Errorf("payload[%d] = %#x, want %#x (seed %#x, len %d)", i, b, want, seed, len(p))
		}
	}
	return nil
}

// TestBorrowAcrossHandlerReturn exercises the zero-copy buffer
// lifecycle on both transports: request frames are parked in object
// mailboxes past the transport handler's return (pipelined Invokes),
// handlers reply with results that alias the borrowed request bytes,
// and payload sizes straddle the pooled-window size so the TCP read
// loop's rewind, compact, and swap-out paths all run. Run under -race;
// with -tags buftrack it additionally asserts no buffer leaked.
func TestBorrowAcrossHandlerReturn(t *testing.T) {
	t.Run("mem", func(t *testing.T) {
		f := transport.NewFabric(nil)
		defer f.Close()
		runBorrowStorm(t, f)
	})
	t.Run("tcp", func(t *testing.T) {
		runBorrowStorm(t, &transport.TCP{})
	})
}

func runBorrowStorm(t *testing.T, tr transport.Transport) {
	live0 := buf.Live()
	n0, err := NewNode(tr, nil, "borrow-srv")
	if err != nil {
		t.Fatal(err)
	}
	n1, err := NewNode(tr, nil, "borrow-cli")
	if err != nil {
		t.Fatal(err)
	}
	iface := idl.NewInterface("BorrowEcho", idl.MethodSig{Name: "EchoV"})
	impl := &Behavior{
		Iface: iface,
		Handlers: map[string]Handler{
			"EchoV": func(inv *Invocation) ([][]byte, error) {
				// The views are only valid during dispatch; verify and
				// echo them — the reply marshal happens before the
				// frame is released, so aliasing is legal.
				if err := checkBorrowPayload(inv.Args[0]); err != nil {
					return nil, err
				}
				return [][]byte{inv.Args[0]}, nil
			},
		},
	}
	if _, err := n0.Spawn(echoLOID, impl, WithConcurrency(4)); err != nil {
		t.Fatal(err)
	}

	// Small frames exercise window rewind; the 60000/70000-byte ones
	// force mid-window compaction and (being larger than one pooled
	// window) the grow-and-swap path of the TCP read loop.
	sizes := []int{0, 16, 900, 60000, 70000}
	const callers = 4
	const iters = 40
	const pipeline = 4
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := clientOn(n1, loid.NewNoKey(300, uint64(10+g)))
			c.Timeout = 5 * time.Second
			c.AddBinding(binding.Forever(echoLOID, n0.Address()))
			for i := 0; i < iters; i++ {
				// A burst of pipelined Invokes parks several request
				// frames in the mailbox at once before any is served.
				futures := make([]*Future, 0, pipeline)
				sent := make([][]byte, 0, pipeline)
				for k := 0; k < pipeline; k++ {
					seed := uint64(g)<<32 | uint64(i)<<8 | uint64(k)
					p := borrowPayload(seed, sizes[(i+k)%len(sizes)])
					fu, err := c.Invoke(echoLOID, "EchoV", p)
					if err != nil {
						errs <- err
						return
					}
					futures = append(futures, fu)
					sent = append(sent, p)
				}
				for k, fu := range futures {
					res, err := fu.Wait(5 * time.Second)
					if err != nil {
						errs <- fmt.Errorf("caller %d iter %d/%d: %w", g, i, k, err)
						return
					}
					if res.Code != wire.OK {
						errs <- fmt.Errorf("caller %d iter %d/%d: %v", g, i, k, res.Err())
						return
					}
					out, err := res.Result(0)
					if err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(out, sent[k]) {
						errs <- fmt.Errorf("caller %d iter %d/%d: echo mismatch (%d vs %d bytes)", g, i, k, len(out), len(sent[k]))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	n1.Close()
	n0.Close()
	if !buf.Tracking {
		return
	}
	// All traffic is drained and both nodes are down: every pooled
	// buffer must have been released. Transport read loops let go of
	// their windows asynchronously on close, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for buf.Live() > live0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := buf.Live(); n > live0 {
		t.Errorf("%d buffers still live after shutdown:\n%s", n-live0, joinStacks(buf.LiveStacks()))
	}
}

func joinStacks(stacks []string) string {
	var b bytes.Buffer
	for i, s := range stacks {
		fmt.Fprintf(&b, "--- live buffer %d ---\n%s", i+1, s)
	}
	return b.String()
}
