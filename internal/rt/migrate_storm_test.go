package rt

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/binding"
	"repro/internal/buf"
	"repro/internal/idl"
	"repro/internal/loid"
	"repro/internal/transport"
	"repro/internal/wire"
)

// seqImpl is a FIFO witness: each sender submits a strictly increasing
// sequence number, and the object rejects any call that arrives out of
// order for its sender. Surviving a full storm therefore proves the
// migration gates (park, replay, forward) never reorder one sender's
// pipelined frames. State round-trips through SaveState/RestoreState
// so the object can be shipped mid-storm.
type seqImpl struct {
	mu    sync.Mutex
	last  map[uint64]uint64
	total uint64
}

func (s *seqImpl) Interface() *idl.Interface {
	return idl.NewInterface("SeqWitness",
		idl.MethodSig{Name: "Add",
			Params:  []idl.Param{{Name: "sender", Type: idl.TUint64}, {Name: "seq", Type: idl.TUint64}},
			Returns: []idl.Param{{Name: "total", Type: idl.TUint64}}})
}

func (s *seqImpl) Dispatch(inv *Invocation) ([][]byte, error) {
	if inv.Method != "Add" {
		return nil, &NoSuchMethodError{Method: inv.Method}
	}
	rawS, err := inv.Arg(0)
	if err != nil {
		return nil, err
	}
	rawQ, err := inv.Arg(1)
	if err != nil {
		return nil, err
	}
	sender, _ := wire.AsUint64(rawS)
	seq, _ := wire.AsUint64(rawQ)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		s.last = make(map[uint64]uint64)
	}
	if seq != s.last[sender]+1 {
		return nil, fmt.Errorf("sender %d: seq %d after %d — FIFO broken", sender, seq, s.last[sender])
	}
	s.last[sender] = seq
	s.total++
	return [][]byte{wire.Uint64(s.total)}, nil
}

func (s *seqImpl) SaveState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]byte, 0, 16+len(s.last)*16)
	out = binary.BigEndian.AppendUint64(out, s.total)
	out = binary.BigEndian.AppendUint64(out, uint64(len(s.last)))
	for k, v := range s.last {
		out = binary.BigEndian.AppendUint64(out, k)
		out = binary.BigEndian.AppendUint64(out, v)
	}
	return out, nil
}

func (s *seqImpl) RestoreState(state []byte) error {
	if len(state) < 16 {
		return fmt.Errorf("seqImpl: short state")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total = binary.BigEndian.Uint64(state)
	n := binary.BigEndian.Uint64(state[8:])
	state = state[16:]
	s.last = make(map[uint64]uint64, n)
	for i := uint64(0); i < n; i++ {
		s.last[binary.BigEndian.Uint64(state)] = binary.BigEndian.Uint64(state[8:])
		state = state[16:]
	}
	return nil
}

func (s *seqImpl) snapshot() (map[uint64]uint64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]uint64, len(s.last))
	for k, v := range s.last {
		out[k] = v
	}
	return out, s.total
}

// TestMigrationStormFIFO interleaves a full migration life cycle —
// park, abort (local replay), park again, drain, ship, kill, forward —
// with concurrent pipelined invokers on both transports. Every call
// must succeed, per-sender FIFO order must hold across the replay and
// the forwarding flip, and (with -tags buftrack) no parked or
// forwarded frame may leak a pooled buffer. Run under -race: the gate
// table, the forwarding path, and concurrent receivers all contend
// here.
func TestMigrationStormFIFO(t *testing.T) {
	t.Run("mem", func(t *testing.T) {
		f := transport.NewFabric(nil)
		defer f.Close()
		runMigrationStorm(t, f)
	})
	t.Run("tcp", func(t *testing.T) {
		runMigrationStorm(t, &transport.TCP{})
	})
}

func runMigrationStorm(t *testing.T, tr transport.Transport) {
	live0 := buf.Live()
	src, err := NewNode(tr, nil, "mig-src")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewNode(tr, nil, "mig-dst")
	if err != nil {
		t.Fatal(err)
	}
	cliNode, err := NewNode(tr, nil, "mig-cli")
	if err != nil {
		t.Fatal(err)
	}

	objL := loid.NewNoKey(256, 50)
	hostL := loid.NewNoKey(loid.ClassIDLegionHost, 50) // the drain's exempt identity
	impl := &seqImpl{}
	if _, err := src.Spawn(objL, impl); err != nil {
		t.Fatal(err)
	}

	const senders = 6
	const windows = 50
	const pipeline = 4
	var wg sync.WaitGroup
	errs := make(chan error, senders)
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := clientOn(cliNode, loid.NewNoKey(300, uint64(10+g)))
			c.Timeout = 5 * time.Second
			c.AddBinding(binding.Forever(objL, src.Address()))
			seq := uint64(0)
			for i := 0; i < windows; i++ {
				// A pipelined burst: several frames of one sender are in
				// flight together, so a migration flip mid-burst must
				// park/forward them without reordering.
				futures := make([]*Future, 0, pipeline)
				for k := 0; k < pipeline; k++ {
					seq++
					fu, err := c.Invoke(objL, "Add", wire.Uint64(uint64(g)), wire.Uint64(seq))
					if err != nil {
						errs <- err
						return
					}
					futures = append(futures, fu)
				}
				for k, fu := range futures {
					res, err := fu.Wait(5 * time.Second)
					if err != nil {
						errs <- fmt.Errorf("sender %d window %d/%d: %w", g, i, k, err)
						return
					}
					if res.Code != wire.OK {
						errs <- fmt.Errorf("sender %d window %d/%d: %v", g, i, k, res.Err())
						return
					}
				}
			}
		}(g)
	}

	// The migration driver, interleaved with the storm.
	drainCaller := clientOn(cliNode, hostL)
	drainCaller.Timeout = 5 * time.Second

	// Cycle 1: park, let frames pile up, abort. The parked frames must
	// replay locally in order.
	time.Sleep(5 * time.Millisecond)
	if err := src.Park(objL, hostL); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	src.Unpark(objL)

	// Cycle 2: the commit path. Park, drain via the exempt identity
	// (serializes behind accepted work), ship state, kill, forward.
	time.Sleep(10 * time.Millisecond)
	if err := src.Park(objL, hostL); err != nil {
		t.Fatal(err)
	}
	res, err := drainCaller.CallAddr(src.Address(), objL, "SaveState")
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if res.Code != wire.OK {
		t.Fatalf("drain: %v", res.Err())
	}
	state, err := res.Result(0)
	if err != nil {
		t.Fatal(err)
	}
	impl2 := &seqImpl{}
	if err := impl2.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Spawn(objL, impl2); err != nil {
		t.Fatal(err)
	}
	src.Kill(objL)
	src.ForwardParked(objL, dst.Element())

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if !src.DropTombstone(objL) {
		t.Error("no forwarding tombstone to drop after commit")
	}

	// Exactly one incarnation, holding the complete FIFO history.
	if _, ok := src.Lookup(objL); ok {
		t.Error("source still runs the object after commit")
	}
	if _, ok := dst.Lookup(objL); !ok {
		t.Fatal("destination does not run the object")
	}
	last, total := impl2.snapshot()
	if want := uint64(senders * windows * pipeline); total != want {
		t.Errorf("total = %d, want %d (calls lost or duplicated)", total, want)
	}
	for g := 0; g < senders; g++ {
		if last[uint64(g)] != uint64(windows*pipeline) {
			t.Errorf("sender %d final seq = %d, want %d", g, last[uint64(g)], windows*pipeline)
		}
	}

	cliNode.Close()
	dst.Close()
	src.Close()
	if !buf.Tracking {
		return
	}
	deadline := time.Now().Add(2 * time.Second)
	for buf.Live() > live0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := buf.Live(); n > live0 {
		t.Errorf("%d buffers still live after storm:\n%s", n-live0, joinStacks(buf.LiveStacks()))
	}
}
