package rt

import (
	"testing"
	"time"

	"repro/internal/binding"
	"repro/internal/idl"
	"repro/internal/loid"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestTraceSpansCrossHops: with a shared tracer at SampleEvery=1, one
// client call produces a client-side "call" span and a server-side
// "serve" span joined by the same trace id, with the binding-cache
// event on the call span — the §4.1 chain made visible.
func TestTraceSpansCrossHops(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	tr := trace.New(trace.Config{SampleEvery: 1, Capacity: 256})
	for _, n := range nodes {
		n.SetTracer(tr)
	}
	spawnEcho(t, nodes[0], echoLOID)
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(echoLOID, nodes[0].Address()))

	res, err := c.Call(echoLOID, "Echo", []byte("hi"))
	if err != nil || res.Code != wire.OK {
		t.Fatalf("call: %v %v", res, err)
	}

	ids := tr.TraceIDs()
	if len(ids) != 1 {
		t.Fatalf("got %d traces, want 1 (ids %v)", len(ids), ids)
	}
	spans := tr.Trace(ids[0])
	var call, serve *trace.Span
	for _, s := range spans {
		switch s.Kind {
		case "call":
			call = s
		case "serve":
			serve = s
		}
	}
	if call == nil || serve == nil {
		t.Fatalf("trace missing a hop: %d spans %v", len(spans), spans)
	}
	if serve.Context().ParentSpanID != call.Context().SpanID {
		t.Errorf("serve span parent = %d, want the call span %d",
			serve.Context().ParentSpanID, call.Context().SpanID)
	}
	if call.Outcome != wire.OK.String() || serve.Outcome != wire.OK.String() {
		t.Errorf("outcomes = %q / %q, want %q on both", call.Outcome, serve.Outcome, wire.OK)
	}
	var sawCacheHit bool
	for _, e := range call.Events {
		if e.Name == "cache" && e.Msg == "hit" {
			sawCacheHit = true
		}
	}
	if !sawCacheHit {
		t.Errorf("call span has no cache-hit event: %+v", call.Events)
	}
}

// TestTraceNestedCallJoins: a proxy object making a nested call with
// inv.Ctx() parents the inner hop under its own serve span, so one
// trace spans three nodes.
func TestTraceNestedCallJoins(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 3)
	tr := trace.New(trace.Config{SampleEvery: 1, Capacity: 256})
	for _, n := range nodes {
		n.SetTracer(tr)
	}
	innerLOID := loid.NewNoKey(256, 61)
	proxyLOID := loid.NewNoKey(256, 62)
	spawnEcho(t, nodes[1], innerLOID)

	proxy := &Behavior{
		Iface: idl.NewInterface("Proxy", idl.MethodSig{Name: "Relay"}),
		Handlers: map[string]Handler{
			"Relay": func(inv *Invocation) ([][]byte, error) {
				res, err := inv.Obj.Caller().CallCtx(inv.Ctx(), innerLOID, "Echo", []byte("x"))
				if err != nil {
					return nil, err
				}
				return nil, res.Err()
			},
		},
	}
	po, err := nodes[0].Spawn(proxyLOID, proxy)
	if err != nil {
		t.Fatal(err)
	}
	po.Caller().AddBinding(binding.Forever(innerLOID, nodes[1].Address()))
	c := clientOn(nodes[2], clientLOID)
	c.AddBinding(binding.Forever(proxyLOID, nodes[0].Address()))

	res, err := c.Call(proxyLOID, "Relay")
	if err != nil || res.Code != wire.OK {
		t.Fatalf("relay: %v %v", res, err)
	}

	ids := tr.TraceIDs()
	if len(ids) != 1 {
		t.Fatalf("got %d traces, want 1 — the nested hop must join, not start fresh", len(ids))
	}
	spans := tr.Trace(ids[0])
	if len(spans) != 4 { // client call, proxy serve, proxy call, inner serve
		t.Fatalf("trace has %d spans, want 4:\n%s", len(spans), trace.Timeline(spans))
	}
}

// TestTraceDisabledZeroOverheadPath: with no tracer installed, calls
// work and no spans exist anywhere (nil-receiver discipline holds).
func TestTraceDisabledZeroOverheadPath(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	spawnEcho(t, nodes[0], echoLOID)
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(echoLOID, nodes[0].Address()))
	res, err := c.Call(echoLOID, "Echo", []byte("hi"))
	if err != nil || res.Code != wire.OK {
		t.Fatalf("untraced call failed: %v %v", res, err)
	}
	if nodes[1].Tracer() != nil {
		t.Fatal("test premise broken: node has a tracer")
	}
}

// TestTraceUnsampledRootNotRecorded: at a high sampling interval, an
// unsampled call leaves no spans, and the wire envelope carries no
// trace ids downstream.
func TestTraceUnsampledRootNotRecorded(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	tr := trace.New(trace.Config{SampleEvery: 1 << 30, Capacity: 16})
	for _, n := range nodes {
		n.SetTracer(tr)
	}
	spawnEcho(t, nodes[0], echoLOID)
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(echoLOID, nodes[0].Address()))
	for i := 0; i < 5; i++ {
		res, err := c.Call(echoLOID, "Echo", []byte("hi"))
		if err != nil || res.Code != wire.OK {
			t.Fatalf("call %d: %v %v", i, res, err)
		}
	}
	if spans := tr.Spans(); len(spans) != 0 {
		t.Errorf("unsampled calls recorded %d spans", len(spans))
	}
}

// TestTraceDeadlineRejectionEvent: a request expiring in the mailbox
// finishes its serve span with a deadline event, so the trace explains
// the ErrDeadlineExceeded the caller saw.
func TestTraceDeadlineRejectionEvent(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	tr := trace.New(trace.Config{SampleEvery: 1, Capacity: 64})
	for _, n := range nodes {
		n.SetTracer(tr)
	}
	block := make(chan struct{})
	busyLOID := loid.NewNoKey(256, 63)
	impl := &Behavior{
		Iface: idl.NewInterface("Busy", idl.MethodSig{Name: "Work"}),
		Handlers: map[string]Handler{
			"Work": func(inv *Invocation) ([][]byte, error) { <-block; return nil, nil },
		},
	}
	if _, err := nodes[0].Spawn(busyLOID, impl); err != nil {
		t.Fatal(err)
	}
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(busyLOID, nodes[0].Address()))

	f1, err := c.Invoke(busyLOID, "Work")
	if err != nil {
		t.Fatal(err)
	}
	// Invoke is the low-level API: it propagates a span from ctx but
	// does not open one, so root the trace explicitly.
	root := tr.Root("call", "Work", "test-client")
	ctx := invCtx{t: time.Now().Add(60 * time.Millisecond), sc: root.Context()}
	f2, err := c.InvokeCtx(ctx, busyLOID, "Work")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)
	close(block)
	if _, err := f2.Wait(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Wait(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	var sawDeadlineEvent bool
	for _, s := range tr.Spans() {
		if s.Kind != "serve" {
			continue
		}
		for _, e := range s.Events {
			if e.Name == "deadline" {
				sawDeadlineEvent = true
			}
		}
	}
	if !sawDeadlineEvent {
		t.Errorf("no serve span carries a deadline event:\n%s", trace.Timeline(tr.Spans()))
	}
}
