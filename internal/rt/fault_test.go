package rt

import (
	"testing"
	"time"

	"repro/internal/binding"
	"repro/internal/idl"
	"repro/internal/loid"
	"repro/internal/oa"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestCallSurvivesMessageLoss injects probabilistic loss and checks
// that the communication layer's retransmission keeps calls
// succeeding (§4.1.4: the layer absorbs transient failures).
func TestCallSurvivesMessageLoss(t *testing.T) {
	f := transport.NewFabric(nil)
	defer f.Close()
	n0, _ := NewNode(f, nil, "srv")
	defer n0.Close()
	n1, _ := NewNode(f, nil, "cli")
	defer n1.Close()
	spawnEcho(t, n0, echoLOID)

	r := newMapResolver()
	r.set(binding.Forever(echoLOID, n0.Address()))
	c := NewCaller(n1, clientLOID, r)
	c.Timeout = 100 * time.Millisecond
	c.MaxRefresh = 12

	f.SetLoss(0.25, 7) // 25% of all messages vanish
	okCount := 0
	for i := 0; i < 30; i++ {
		res, err := c.Call(echoLOID, "Echo", []byte("x"))
		if err == nil && res.Code == wire.OK {
			okCount++
		}
	}
	// With 12 rounds of retransmission per call, the failure
	// probability per call is negligible.
	if okCount < 28 {
		t.Errorf("only %d/30 calls survived 25%% loss", okCount)
	}
}

// TestCallSurvivesLossWithoutResolver checks the retransmit path when
// there is no resolver at all: the cached binding is valid, messages
// are just being dropped.
func TestCallSurvivesLossWithoutResolver(t *testing.T) {
	f := transport.NewFabric(nil)
	defer f.Close()
	n0, _ := NewNode(f, nil, "srv")
	defer n0.Close()
	n1, _ := NewNode(f, nil, "cli")
	defer n1.Close()
	spawnEcho(t, n0, echoLOID)

	c := NewCaller(n1, clientLOID, nil)
	c.Timeout = 100 * time.Millisecond
	c.MaxRefresh = 12
	c.AddBinding(binding.Forever(echoLOID, n0.Address()))

	f.SetLoss(0.25, 11)
	okCount := 0
	for i := 0; i < 30; i++ {
		res, err := c.Call(echoLOID, "Echo", []byte("x"))
		if err == nil && res.Code == wire.OK {
			okCount++
		}
	}
	if okCount < 28 {
		t.Errorf("only %d/30 calls survived loss without resolver", okCount)
	}
}

// TestPartitionAndHeal checks that a network partition makes calls
// fail cleanly and that they recover when the partition heals.
func TestPartitionAndHeal(t *testing.T) {
	f := transport.NewFabric(nil)
	defer f.Close()
	n0, _ := NewNode(f, nil, "srv")
	defer n0.Close()
	n1, _ := NewNode(f, nil, "cli")
	defer n1.Close()
	spawnEcho(t, n0, echoLOID)

	c := NewCaller(n1, clientLOID, nil)
	c.Timeout = 100 * time.Millisecond
	c.MaxRefresh = 1
	c.AddBinding(binding.Forever(echoLOID, n0.Address()))

	srvID, _ := oa.MemID(n0.Element())
	cliID, _ := oa.MemID(n1.Element())
	f.Block(srvID, cliID)
	res, err := c.Call(echoLOID, "Echo", []byte("x"))
	if err == nil && res.Code == wire.OK {
		t.Fatal("call succeeded across a partition")
	}
	f.Unblock(srvID, cliID)
	c.AddBinding(binding.Forever(echoLOID, n0.Address())) // cache may have dropped it
	res, err = c.Call(echoLOID, "Echo", []byte("x"))
	if err != nil || res.Code != wire.OK {
		t.Fatalf("call after heal: %v %v", res, err)
	}
}

// TestPartitionHealRecoversViaResolver: with a resolver present (the
// normal deployment shape — §3.6 Binding Agents), a healed partition
// needs NO manual cache intervention: the failed call invalidates the
// cached binding, the refresh path re-resolves, and the cache ends the
// episode warm again.
func TestPartitionHealRecoversViaResolver(t *testing.T) {
	f := transport.NewFabric(nil)
	defer f.Close()
	n0, _ := NewNode(f, nil, "srv")
	defer n0.Close()
	n1, _ := NewNode(f, nil, "cli")
	defer n1.Close()
	spawnEcho(t, n0, echoLOID)

	r := newMapResolver()
	r.set(binding.Forever(echoLOID, n0.Address()))
	c := NewCaller(n1, clientLOID, r)
	c.Timeout = 100 * time.Millisecond
	c.MaxRefresh = 1

	// Warm the cache, then partition.
	if res, err := c.Call(echoLOID, "Echo", []byte("warm")); err != nil || res.Code != wire.OK {
		t.Fatalf("warm call: %v %v", res, err)
	}
	srvID, _ := oa.MemID(n0.Element())
	cliID, _ := oa.MemID(n1.Element())
	f.Block(srvID, cliID)
	if res, err := c.Call(echoLOID, "Echo", []byte("x")); err == nil && res.Code == wire.OK {
		t.Fatal("call succeeded across a partition")
	}

	// Heal. The next call must succeed with no manual AddBinding or
	// cache invalidation — resolution machinery alone recovers it.
	f.Unblock(srvID, cliID)
	res, err := c.Call(echoLOID, "Echo", []byte("y"))
	if err != nil || res.Code != wire.OK {
		t.Fatalf("call after heal (no manual cache repair): %v %v", res, err)
	}
	// And the cache is warm again: one more call must not consult the
	// resolver.
	r.mu.Lock()
	before := r.resolves + r.refreshs
	r.mu.Unlock()
	if res, err := c.Call(echoLOID, "Echo", []byte("z")); err != nil || res.Code != wire.OK {
		t.Fatalf("post-heal cached call: %v %v", res, err)
	}
	r.mu.Lock()
	after := r.resolves + r.refreshs
	r.mu.Unlock()
	if after != before {
		t.Errorf("binding cache not recovered: resolver consulted %d more times", after-before)
	}
}

// TestLatencyDoesNotBreakProtocol runs the full request/reply exchange
// under simulated wide-area latency.
func TestLatencyDoesNotBreakProtocol(t *testing.T) {
	f := transport.NewFabric(nil)
	defer f.Close()
	f.SetLatency(20 * time.Millisecond)
	n0, _ := NewNode(f, nil, "srv")
	defer n0.Close()
	n1, _ := NewNode(f, nil, "cli")
	defer n1.Close()
	spawnEcho(t, n0, echoLOID)
	c := clientOn(n1, clientLOID)
	c.AddBinding(binding.Forever(echoLOID, n0.Address()))
	start := time.Now()
	res, err := c.Call(echoLOID, "Echo", []byte("x"))
	if err != nil || res.Code != wire.OK {
		t.Fatalf("call: %v %v", res, err)
	}
	if rtt := time.Since(start); rtt < 35*time.Millisecond {
		t.Errorf("round trip %v, want >= ~40ms under 20ms one-way latency", rtt)
	}
}

// TestExpiredBindingTriggersResolution: a TTL'd binding that has
// lapsed must not be used; the resolver is consulted again.
func TestExpiredBindingTriggersResolution(t *testing.T) {
	f := transport.NewFabric(nil)
	defer f.Close()
	n0, _ := NewNode(f, nil, "srv")
	defer n0.Close()
	n1, _ := NewNode(f, nil, "cli")
	defer n1.Close()
	spawnEcho(t, n0, echoLOID)

	r := newMapResolver()
	r.set(binding.Forever(echoLOID, n0.Address()))
	c := NewCaller(n1, clientLOID, r)
	c.Timeout = time.Second
	// Seed an already-expiring binding.
	c.AddBinding(binding.Until(echoLOID, n0.Address(), time.Now().Add(20*time.Millisecond)))
	time.Sleep(40 * time.Millisecond)
	res, err := c.Call(echoLOID, "Echo", []byte("x"))
	if err != nil || res.Code != wire.OK {
		t.Fatalf("call after expiry: %v %v", res, err)
	}
	if r.resolves == 0 {
		t.Error("resolver never consulted despite expired binding")
	}
}

// TestPanicInHandlerIsConfined: a panicking method is reported as an
// object exception (ErrApp), and the object keeps serving.
func TestPanicInHandlerIsConfined(t *testing.T) {
	_, nodes := newTestFabricNodes(t, 2)
	impl := &Behavior{
		Iface: idl.NewInterface("Panicky",
			idl.MethodSig{Name: "Boom"}, idl.MethodSig{Name: "Fine"}),
		Handlers: map[string]Handler{
			"Boom": func(inv *Invocation) ([][]byte, error) {
				panic("kaboom")
			},
			"Fine": func(inv *Invocation) ([][]byte, error) {
				return [][]byte{[]byte("ok")}, nil
			},
		},
	}
	l := loid.NewNoKey(256, 50)
	if _, err := nodes[0].Spawn(l, impl); err != nil {
		t.Fatal(err)
	}
	c := clientOn(nodes[1], clientLOID)
	c.AddBinding(binding.Forever(l, nodes[0].Address()))
	res, err := c.Call(l, "Boom")
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != wire.ErrApp {
		t.Errorf("panic reported as %v", res.Code)
	}
	res, err = c.Call(l, "Fine")
	if err != nil || res.Code != wire.OK {
		t.Fatalf("object died after panic: %v %v", res, err)
	}
}
