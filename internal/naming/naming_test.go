package naming

import (
	"errors"
	"testing"

	"repro/internal/loid"
)

var (
	l1 = loid.NewNoKey(256, 1)
	l2 = loid.NewNoKey(256, 2)
)

func TestBindLookup(t *testing.T) {
	c := NewContext()
	if err := c.Bind("/home/alice/matrix", l1, false); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup("/home/alice/matrix")
	if err != nil || got != l1 {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	// Paths normalize: leading/trailing slashes don't matter.
	if got, err := c.Lookup("home/alice/matrix/"); err != nil || got != l1 {
		t.Errorf("normalized lookup = %v, %v", got, err)
	}
}

func TestLookupNotFound(t *testing.T) {
	c := NewContext()
	c.Bind("/a/b", l1, false)
	for _, p := range []string{"/a/c", "/x", "/a/b/c"} {
		if _, err := c.Lookup(p); err == nil {
			t.Errorf("Lookup(%q) succeeded", p)
		}
	}
	if _, err := c.Lookup("/a"); !errors.Is(err, ErrIsDir) {
		t.Errorf("Lookup of dir = %v", err)
	}
}

func TestBindConflicts(t *testing.T) {
	c := NewContext()
	c.Bind("/n", l1, false)
	if err := c.Bind("/n", l2, false); !errors.Is(err, ErrExists) {
		t.Errorf("rebind without replace: %v", err)
	}
	if err := c.Bind("/n", l2, true); err != nil {
		t.Fatalf("rebind with replace: %v", err)
	}
	if got, _ := c.Lookup("/n"); got != l2 {
		t.Error("replace did not take")
	}
	c.Bind("/d/leaf", l1, false)
	if err := c.Bind("/d", l2, true); !errors.Is(err, ErrIsDir) {
		t.Errorf("bind over directory: %v", err)
	}
	if err := c.Bind("/n/under-leaf", l2, false); !errors.Is(err, ErrNotDir) {
		t.Errorf("bind through leaf: %v", err)
	}
}

func TestBadNames(t *testing.T) {
	c := NewContext()
	for _, p := range []string{"", "/", "/a//b", "/a/./b", "/a/../b"} {
		if err := c.Bind(p, l1, false); !errors.Is(err, ErrBadName) {
			t.Errorf("Bind(%q) = %v, want ErrBadName", p, err)
		}
	}
}

func TestUnbind(t *testing.T) {
	c := NewContext()
	c.Bind("/a/b", l1, false)
	if err := c.Unbind("/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("/a/b"); !errors.Is(err, ErrNotFound) {
		t.Error("unbound name still resolves")
	}
	if err := c.Unbind("/a/b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double unbind: %v", err)
	}
}

func TestList(t *testing.T) {
	c := NewContext()
	c.Bind("/dir/x", l1, false)
	c.Bind("/dir/sub/y", l2, false)
	c.Bind("/top", l1, false)

	root, err := c.List("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(root) != 2 || root[0].Name != "dir" || !root[0].IsDir || root[1].Name != "top" || root[1].IsDir {
		t.Errorf("root listing = %+v", root)
	}
	dir, err := c.List("/dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != 2 || dir[0].Name != "sub" || dir[1].Name != "x" || dir[1].LOID != l1 {
		t.Errorf("dir listing = %+v", dir)
	}
	if _, err := c.List("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("List missing dir: %v", err)
	}
	if _, err := c.List("/top"); !errors.Is(err, ErrNotDir) {
		t.Errorf("List of leaf: %v", err)
	}
}

func TestWalkAndLen(t *testing.T) {
	c := NewContext()
	c.Bind("/b", l2, false)
	c.Bind("/a/x", l1, false)
	var paths []string
	c.Walk(func(p string, l loid.LOID) { paths = append(paths, p) })
	if len(paths) != 2 || paths[0] != "/a/x" || paths[1] != "/b" {
		t.Errorf("Walk order = %v", paths)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c := NewContext()
	c.Bind("/home/alice/app", l1, false)
	c.Bind("/home/bob/data", l2, false)
	c.Bind("/etc", loid.New(1, 5, loid.DeriveKey("e")), false)

	got, err := UnmarshalContext(c.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("Len = %d", got.Len())
	}
	want := map[string]loid.LOID{}
	c.Walk(func(p string, l loid.LOID) { want[p] = l })
	got.Walk(func(p string, l loid.LOID) {
		if want[p] != l {
			t.Errorf("path %q: %v != %v", p, l, want[p])
		}
		delete(want, p)
	})
	if len(want) != 0 {
		t.Errorf("missing paths: %v", want)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	c := NewContext()
	c.Bind("/a", l1, false)
	buf := c.Marshal(nil)
	for _, n := range []int{0, 3, 5, len(buf) - 1} {
		if _, err := UnmarshalContext(buf[:n]); err == nil {
			t.Errorf("prefix %d accepted", n)
		}
	}
	if _, err := UnmarshalContext(append(buf, 9)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestEmptyContextRoundTrip(t *testing.T) {
	got, err := UnmarshalContext(NewContext().Marshal(nil))
	if err != nil || got.Len() != 0 {
		t.Errorf("empty round trip: %v %v", got, err)
	}
}

func TestConcurrentUse(t *testing.T) {
	c := NewContext()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				path := "/g/" + string(rune('a'+g)) + "/" + string(rune('0'+i%10))
				c.Bind(path, l1, true)
				c.Lookup(path)
				c.List("/g")
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
