package naming

import (
	"repro/internal/idl"
	"repro/internal/rt"
	"repro/internal/wire"
)

// ImplName registers the context-object implementation: a naming
// context as a full Legion object. This realizes the paper's "single
// persistent name space [that] unites the objects in the Legion
// system" (§1): contexts are shared, persistent, migratable objects
// like everything else, and the string-name → LOID mappings compilers
// use (§4.1) live in them.
const ImplName = "legion.context"

// Interface is the context object's member-function set.
var Interface = idl.NewInterface("LegionContext",
	idl.MethodSig{Name: "BindName",
		Params: []idl.Param{
			{Name: "path", Type: idl.TString},
			{Name: "target", Type: idl.TLOID},
			{Name: "replace", Type: idl.TBool}}},
	idl.MethodSig{Name: "LookupName",
		Params:  []idl.Param{{Name: "path", Type: idl.TString}},
		Returns: []idl.Param{{Name: "target", Type: idl.TLOID}}},
	idl.MethodSig{Name: "UnbindName",
		Params: []idl.Param{{Name: "path", Type: idl.TString}}},
	idl.MethodSig{Name: "ListNames",
		Params: []idl.Param{{Name: "path", Type: idl.TString}},
		Returns: []idl.Param{
			{Name: "names", Type: idl.TBytes},
			{Name: "dirs", Type: idl.TBytes},
			{Name: "targets", Type: idl.TBytes}}},
	idl.MethodSig{Name: "CountNames",
		Returns: []idl.Param{{Name: "n", Type: idl.TUint64}}},
)

// NewContextImpl is the implreg factory for ImplName.
func NewContextImpl() rt.Impl {
	ctx := NewContext()
	return &rt.Behavior{
		Iface: Interface,
		Handlers: map[string]rt.Handler{
			"BindName": func(inv *rt.Invocation) ([][]byte, error) {
				path, err := inv.Arg(0)
				if err != nil {
					return nil, err
				}
				rawTarget, err := inv.Arg(1)
				if err != nil {
					return nil, err
				}
				target, err := wire.AsLOID(rawTarget)
				if err != nil {
					return nil, err
				}
				rawReplace, err := inv.Arg(2)
				if err != nil {
					return nil, err
				}
				replace, err := wire.AsBool(rawReplace)
				if err != nil {
					return nil, err
				}
				return nil, ctx.Bind(wire.AsString(path), target, replace)
			},
			"LookupName": func(inv *rt.Invocation) ([][]byte, error) {
				path, err := inv.Arg(0)
				if err != nil {
					return nil, err
				}
				l, err := ctx.Lookup(wire.AsString(path))
				if err != nil {
					return nil, err
				}
				return [][]byte{wire.LOID(l)}, nil
			},
			"UnbindName": func(inv *rt.Invocation) ([][]byte, error) {
				path, err := inv.Arg(0)
				if err != nil {
					return nil, err
				}
				return nil, ctx.Unbind(wire.AsString(path))
			},
			"ListNames": func(inv *rt.Invocation) ([][]byte, error) {
				path, err := inv.Arg(0)
				if err != nil {
					return nil, err
				}
				entries, err := ctx.List(wire.AsString(path))
				if err != nil {
					return nil, err
				}
				var names, dirs []string
				var targets []byte
				for _, e := range entries {
					if e.IsDir {
						dirs = append(dirs, e.Name)
						continue
					}
					names = append(names, e.Name)
					targets = e.LOID.Marshal(targets)
				}
				return [][]byte{wire.StringList(names), wire.StringList(dirs), targets}, nil
			},
			"CountNames": func(inv *rt.Invocation) ([][]byte, error) {
				return [][]byte{wire.Uint64(uint64(ctx.Len()))}, nil
			},
		},
		Save: func() ([]byte, error) { return ctx.Marshal(nil), nil },
		Restore: func(state []byte) error {
			if len(state) == 0 {
				return nil
			}
			restored, err := UnmarshalContext(state)
			if err != nil {
				return err
			}
			ctx.Replace(restored)
			return nil
		},
	}
}
