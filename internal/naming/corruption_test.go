package naming

import (
	"math/rand"
	"testing"

	"repro/internal/loid"
)

// TestUnmarshalContextNeverPanics fuzzes context deserialization —
// the RestoreState path of context objects.
func TestUnmarshalContextNeverPanics(t *testing.T) {
	c := NewContext()
	c.Bind("/home/alice/data", loid.NewNoKey(700, 1), false)
	c.Bind("/home/bob/app", loid.NewNoKey(700, 2), false)
	c.Bind("/etc/passwd", loid.NewNoKey(700, 3), false)
	valid := c.Marshal(nil)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 6000; i++ {
		var buf []byte
		if i%2 == 0 {
			buf = make([]byte, rng.Intn(len(valid)*2))
			rng.Read(buf)
		} else {
			buf = append([]byte(nil), valid...)
			for j := 0; j < 1+rng.Intn(4); j++ {
				if len(buf) > 0 {
					buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
				}
			}
			if rng.Intn(3) == 0 && len(buf) > 0 {
				buf = buf[:rng.Intn(len(buf))]
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %x: %v", buf, r)
				}
			}()
			UnmarshalContext(buf)
		}()
	}
}
