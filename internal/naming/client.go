package naming

import (
	"fmt"

	"repro/internal/loid"
	"repro/internal/rt"
	"repro/internal/wire"
)

// Client is a typed handle on a remote context object.
type Client struct {
	c   *rt.Caller
	ctx loid.LOID
}

// NewClient wraps caller for invocations on the context object named
// ctx.
func NewClient(c *rt.Caller, ctx loid.LOID) *Client {
	return &Client{c: c, ctx: ctx}
}

// Context returns the target context object's LOID.
func (cl *Client) Context() loid.LOID { return cl.ctx }

// Bind maps path to target in the remote context.
func (cl *Client) Bind(path string, target loid.LOID, replace bool) error {
	res, err := cl.c.Call(cl.ctx, "BindName",
		wire.String(path), wire.LOID(target), wire.Bool(replace))
	if err != nil {
		return err
	}
	return res.Err()
}

// Lookup resolves path in the remote context.
func (cl *Client) Lookup(path string) (loid.LOID, error) {
	res, err := cl.c.Call(cl.ctx, "LookupName", wire.String(path))
	if err != nil {
		return loid.Nil, err
	}
	raw, err := res.Result(0)
	if err != nil {
		return loid.Nil, err
	}
	return wire.AsLOID(raw)
}

// Unbind removes path from the remote context.
func (cl *Client) Unbind(path string) error {
	res, err := cl.c.Call(cl.ctx, "UnbindName", wire.String(path))
	if err != nil {
		return err
	}
	return res.Err()
}

// List enumerates the directory at path in the remote context.
func (cl *Client) List(path string) (names []string, dirs []string, targets []loid.LOID, err error) {
	res, err := cl.c.Call(cl.ctx, "ListNames", wire.String(path))
	if err != nil {
		return nil, nil, nil, err
	}
	raw, err := res.Result(0)
	if err != nil {
		return nil, nil, nil, err
	}
	if names, err = wire.AsStringList(raw); err != nil {
		return nil, nil, nil, err
	}
	if raw, err = res.Result(1); err != nil {
		return nil, nil, nil, err
	}
	if dirs, err = wire.AsStringList(raw); err != nil {
		return nil, nil, nil, err
	}
	if raw, err = res.Result(2); err != nil {
		return nil, nil, nil, err
	}
	for len(raw) > 0 {
		var l loid.LOID
		l, raw, err = loid.Unmarshal(raw)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("naming: targets: %w", err)
		}
		targets = append(targets, l)
	}
	if len(targets) != len(names) {
		return nil, nil, nil, fmt.Errorf("naming: %d names but %d targets", len(names), len(targets))
	}
	return names, dirs, targets, nil
}

// Len counts the leaves in the remote context.
func (cl *Client) Len() (uint64, error) {
	res, err := cl.c.Call(cl.ctx, "CountNames")
	if err != nil {
		return 0, err
	}
	raw, err := res.Result(0)
	if err != nil {
		return 0, err
	}
	return wire.AsUint64(raw)
}
