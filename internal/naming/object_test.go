package naming

import (
	"testing"

	"repro/internal/loid"
	"repro/internal/rt"
	"repro/internal/wire"
)

func dispatch(t *testing.T, impl rt.Impl, method string, args ...[]byte) ([][]byte, error) {
	t.Helper()
	return impl.Dispatch(&rt.Invocation{Method: method, Args: args})
}

func mustDispatch(t *testing.T, impl rt.Impl, method string, args ...[]byte) [][]byte {
	t.Helper()
	out, err := dispatch(t, impl, method, args...)
	if err != nil {
		t.Fatalf("%s: %v", method, err)
	}
	return out
}

func TestContextImplBindLookup(t *testing.T) {
	impl := NewContextImpl()
	target := loid.NewNoKey(700, 1)
	mustDispatch(t, impl, "BindName", wire.String("/a/b"), wire.LOID(target), wire.Bool(false))
	out := mustDispatch(t, impl, "LookupName", wire.String("/a/b"))
	got, err := wire.AsLOID(out[0])
	if err != nil || got != target {
		t.Fatalf("LookupName = %v, %v", got, err)
	}
	// Duplicate bind without replace errors.
	if _, err := dispatch(t, impl, "BindName", wire.String("/a/b"), wire.LOID(target), wire.Bool(false)); err == nil {
		t.Error("duplicate bind accepted")
	}
	// With replace it succeeds.
	mustDispatch(t, impl, "BindName", wire.String("/a/b"), wire.LOID(loid.NewNoKey(700, 2)), wire.Bool(true))
}

func TestContextImplListAndCount(t *testing.T) {
	impl := NewContextImpl()
	mustDispatch(t, impl, "BindName", wire.String("/a/x"), wire.LOID(loid.NewNoKey(700, 1)), wire.Bool(false))
	mustDispatch(t, impl, "BindName", wire.String("/a/sub/y"), wire.LOID(loid.NewNoKey(700, 2)), wire.Bool(false))
	out := mustDispatch(t, impl, "ListNames", wire.String("/a"))
	names, _ := wire.AsStringList(out[0])
	dirs, _ := wire.AsStringList(out[1])
	if len(names) != 1 || names[0] != "x" || len(dirs) != 1 || dirs[0] != "sub" {
		t.Errorf("List = %v / %v", names, dirs)
	}
	// Targets blob decodes to one LOID per name.
	l, rest, err := loid.Unmarshal(out[2])
	if err != nil || len(rest) != 0 || !l.SameObject(loid.NewNoKey(700, 1)) {
		t.Errorf("targets = %v %v", l, err)
	}
	out = mustDispatch(t, impl, "CountNames")
	if n, _ := wire.AsUint64(out[0]); n != 2 {
		t.Errorf("CountNames = %d", n)
	}
}

func TestContextImplUnbind(t *testing.T) {
	impl := NewContextImpl()
	mustDispatch(t, impl, "BindName", wire.String("/n"), wire.LOID(loid.NewNoKey(700, 1)), wire.Bool(false))
	mustDispatch(t, impl, "UnbindName", wire.String("/n"))
	if _, err := dispatch(t, impl, "LookupName", wire.String("/n")); err == nil {
		t.Error("unbound name resolves")
	}
	if _, err := dispatch(t, impl, "UnbindName", wire.String("/n")); err == nil {
		t.Error("double unbind succeeded")
	}
}

func TestContextImplStateRoundTrip(t *testing.T) {
	impl := NewContextImpl()
	target := loid.NewNoKey(700, 9)
	mustDispatch(t, impl, "BindName", wire.String("/persisted/name"), wire.LOID(target), wire.Bool(false))
	blob, err := impl.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	impl2 := NewContextImpl()
	if err := impl2.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	out := mustDispatch(t, impl2, "LookupName", wire.String("/persisted/name"))
	if got, _ := wire.AsLOID(out[0]); got != target {
		t.Errorf("restored lookup = %v", got)
	}
	if err := impl2.RestoreState([]byte{1, 2}); err == nil {
		t.Error("corrupt state accepted")
	}
	if err := impl2.RestoreState(nil); err != nil {
		t.Error("empty state rejected")
	}
}

func TestContextImplBadArgs(t *testing.T) {
	impl := NewContextImpl()
	if _, err := dispatch(t, impl, "BindName", wire.String("/x")); err == nil {
		t.Error("missing args accepted")
	}
	if _, err := dispatch(t, impl, "BindName", wire.String("/x"), []byte{1}, wire.Bool(false)); err == nil {
		t.Error("bad LOID accepted")
	}
	if _, err := dispatch(t, impl, "Nope"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestReplaceSwapsContents(t *testing.T) {
	a, b := NewContext(), NewContext()
	a.Bind("/old", loid.NewNoKey(1, 1), false)
	b.Bind("/new", loid.NewNoKey(2, 2), false)
	a.Replace(b)
	if _, err := a.Lookup("/old"); err == nil {
		t.Error("Replace kept old contents")
	}
	if got, err := a.Lookup("/new"); err != nil || !got.SameObject(loid.NewNoKey(2, 2)) {
		t.Errorf("Replace lost new contents: %v %v", got, err)
	}
}
