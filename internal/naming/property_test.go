package naming

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/loid"
)

// TestBindLookupModelProperty drives a context and a map model with
// the same random operations; lookups must agree throughout, and
// marshal/unmarshal must preserve the whole mapping.
func TestBindLookupModelProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewContext()
		model := map[string]loid.LOID{}
		pathOf := func(op uint16) string {
			// A small path universe with shared prefixes.
			return fmt.Sprintf("/d%d/f%d", (op>>4)%4, op%8)
		}
		for i, op := range ops {
			path := pathOf(op)
			target := loid.NewNoKey(9, uint64(i+1))
			switch op % 3 {
			case 0:
				err := c.Bind(path, target, true)
				if err != nil {
					return false // replace-bind into a fresh dir tree must succeed
				}
				model[path] = target
			case 1:
				err := c.Unbind(path)
				_, existed := model[path]
				if existed != (err == nil) {
					return false
				}
				delete(model, path)
			case 2:
				got, err := c.Lookup(path)
				want, existed := model[path]
				if existed != (err == nil) {
					return false
				}
				if existed && got != want {
					return false
				}
			}
		}
		if c.Len() != len(model) {
			return false
		}
		// Serialization preserves everything.
		back, err := UnmarshalContext(c.Marshal(nil))
		if err != nil || back.Len() != len(model) {
			return false
		}
		for path, want := range model {
			got, err := back.Lookup(path)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
