// Package naming implements Legion contexts: the hierarchical mappings
// from human string names to LOIDs that compilers and users work with
// (§4.1: "The compiler uses the context to map string names to LOID's,
// which then become embedded within Legion executable programs"). A
// context is a tree of directories whose leaves are LOIDs, addressed by
// slash-separated paths. Contexts serialize, so they can be carried as
// object state.
package naming

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/loid"
)

var (
	// ErrNotFound reports a path with no binding.
	ErrNotFound = errors.New("naming: name not found")
	// ErrExists reports a Bind over an existing name without replace.
	ErrExists = errors.New("naming: name already bound")
	// ErrNotDir reports path traversal through a leaf.
	ErrNotDir = errors.New("naming: path component is not a directory")
	// ErrIsDir reports a leaf operation on a directory.
	ErrIsDir = errors.New("naming: name is a directory")
	// ErrBadName reports an empty or malformed path component.
	ErrBadName = errors.New("naming: bad name")
)

// Context is a hierarchical name space. The zero value is not usable;
// call NewContext. Contexts are safe for concurrent use.
type Context struct {
	mu   sync.RWMutex
	root *dir
}

type dir struct {
	dirs   map[string]*dir
	leaves map[string]loid.LOID
}

func newDir() *dir {
	return &dir{dirs: make(map[string]*dir), leaves: make(map[string]loid.LOID)}
}

// NewContext builds an empty context.
func NewContext() *Context {
	return &Context{root: newDir()}
}

// split validates and splits a path into components.
func split(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, fmt.Errorf("%w: %q", ErrBadName, p)
		}
	}
	return parts, nil
}

// walk descends to the directory containing the last component,
// creating intermediate directories if create is set. It returns the
// parent dir and the final component.
func (c *Context) walk(parts []string, create bool) (*dir, string, error) {
	d := c.root
	for _, p := range parts[:len(parts)-1] {
		next, ok := d.dirs[p]
		if !ok {
			if _, isLeaf := d.leaves[p]; isLeaf {
				return nil, "", fmt.Errorf("%w: %q", ErrNotDir, p)
			}
			if !create {
				return nil, "", fmt.Errorf("%w: %q", ErrNotFound, p)
			}
			next = newDir()
			d.dirs[p] = next
		}
		d = next
	}
	return d, parts[len(parts)-1], nil
}

// Bind maps path to l, creating intermediate directories. Binding over
// an existing name fails with ErrExists unless replace is set; binding
// over a directory always fails.
func (c *Context) Bind(path string, l loid.LOID, replace bool) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: empty path", ErrBadName)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d, name, err := c.walk(parts, true)
	if err != nil {
		return err
	}
	if _, isDir := d.dirs[name]; isDir {
		return fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	if _, ok := d.leaves[name]; ok && !replace {
		return fmt.Errorf("%w: %q", ErrExists, path)
	}
	d.leaves[name] = l
	return nil
}

// Lookup resolves path to a LOID.
func (c *Context) Lookup(path string) (loid.LOID, error) {
	parts, err := split(path)
	if err != nil {
		return loid.Nil, err
	}
	if len(parts) == 0 {
		return loid.Nil, fmt.Errorf("%w: empty path", ErrBadName)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, name, err := c.walk(parts, false)
	if err != nil {
		return loid.Nil, err
	}
	l, ok := d.leaves[name]
	if !ok {
		if _, isDir := d.dirs[name]; isDir {
			return loid.Nil, fmt.Errorf("%w: %q", ErrIsDir, path)
		}
		return loid.Nil, fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	return l, nil
}

// Unbind removes the leaf at path.
func (c *Context) Unbind(path string) error {
	parts, err := split(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: empty path", ErrBadName)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	d, name, err := c.walk(parts, false)
	if err != nil {
		return err
	}
	if _, ok := d.leaves[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	delete(d.leaves, name)
	return nil
}

// Entry is one directory listing element.
type Entry struct {
	Name  string
	IsDir bool
	LOID  loid.LOID // zero for directories
}

// List enumerates the entries of the directory at path ("" or "/" for
// the root), sorted by name.
func (c *Context) List(path string) ([]Entry, error) {
	parts, err := split(path)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	d := c.root
	for _, p := range parts {
		next, ok := d.dirs[p]
		if !ok {
			if _, isLeaf := d.leaves[p]; isLeaf {
				return nil, fmt.Errorf("%w: %q", ErrNotDir, p)
			}
			return nil, fmt.Errorf("%w: %q", ErrNotFound, p)
		}
		d = next
	}
	out := make([]Entry, 0, len(d.dirs)+len(d.leaves))
	for name := range d.dirs {
		out = append(out, Entry{Name: name, IsDir: true})
	}
	for name, l := range d.leaves {
		out = append(out, Entry{Name: name, LOID: l})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Walk visits every leaf as (path, LOID), in sorted path order.
func (c *Context) Walk(fn func(path string, l loid.LOID)) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var rec func(prefix string, d *dir)
	rec = func(prefix string, d *dir) {
		names := make([]string, 0, len(d.dirs)+len(d.leaves))
		for n := range d.dirs {
			names = append(names, n)
		}
		for n := range d.leaves {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if sub, ok := d.dirs[n]; ok {
				rec(prefix+n+"/", sub)
			}
			if l, ok := d.leaves[n]; ok {
				fn(prefix+n, l)
			}
		}
	}
	rec("/", c.root)
}

// Len counts the leaves in the whole context.
func (c *Context) Len() int {
	n := 0
	c.Walk(func(string, loid.LOID) { n++ })
	return n
}

// Replace swaps c's contents for other's (used by RestoreState).
func (c *Context) Replace(other *Context) {
	other.mu.RLock()
	root := other.root
	other.mu.RUnlock()
	c.mu.Lock()
	c.root = root
	c.mu.Unlock()
}

// Marshal serializes the context as a flat list of (path, LOID) pairs.
func (c *Context) Marshal(dst []byte) []byte {
	type pair struct {
		path string
		l    loid.LOID
	}
	var pairs []pair
	c.Walk(func(p string, l loid.LOID) { pairs = append(pairs, pair{p, l}) })
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(pairs)))
	for _, p := range pairs {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.path)))
		dst = append(dst, p.path...)
		dst = p.l.Marshal(dst)
	}
	return dst
}

// UnmarshalContext rebuilds a context from Marshal output.
func UnmarshalContext(src []byte) (*Context, error) {
	if len(src) < 4 {
		return nil, errors.New("naming: short pair count")
	}
	n := binary.BigEndian.Uint32(src[:4])
	src = src[4:]
	if n > 1<<24 {
		return nil, fmt.Errorf("naming: pair count %d exceeds limit", n)
	}
	c := NewContext()
	for i := uint32(0); i < n; i++ {
		if len(src) < 4 {
			return nil, errors.New("naming: short path length")
		}
		pl := binary.BigEndian.Uint32(src[:4])
		src = src[4:]
		if pl > 1<<16 {
			return nil, fmt.Errorf("naming: path length %d exceeds limit", pl)
		}
		if uint32(len(src)) < pl {
			return nil, errors.New("naming: short path")
		}
		path := string(src[:pl])
		src = src[pl:]
		var l loid.LOID
		var err error
		l, src, err = loid.Unmarshal(src)
		if err != nil {
			return nil, fmt.Errorf("naming: %w", err)
		}
		if err := c.Bind(path, l, false); err != nil {
			return nil, err
		}
	}
	if len(src) != 0 {
		return nil, fmt.Errorf("naming: %d trailing bytes", len(src))
	}
	return c, nil
}
