package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/oa"
)

func memID(t *testing.T, ep Endpoint) uint64 {
	t.Helper()
	id, ok := oa.MemID(ep.Element())
	if !ok {
		t.Fatal("not a mem element")
	}
	return id
}

// TestFabricCrashSilentlyDrops: traffic to a crashed endpoint vanishes
// without an error — the sender learns nothing until its own timers
// fire, exactly like a powered-off machine.
func TestFabricCrashSilentlyDrops(t *testing.T) {
	reg := metrics.NewRegistry()
	f := NewFabric(reg)
	defer f.Close()
	a, _ := f.NewEndpoint()
	b, _ := f.NewEndpoint()
	col := newCollector()
	b.SetHandler(col.handler)

	if !f.Crash(memID(t, b)) {
		t.Fatal("Crash reported unknown endpoint")
	}
	if !f.Crashed(memID(t, b)) {
		t.Fatal("Crashed() = false after Crash")
	}
	// Sends succeed (no error) but deliver nothing.
	if err := a.Send(b.Element(), []byte("into the void")); err != nil {
		t.Fatalf("send to crashed endpoint errored: %v (must be silent)", err)
	}
	// The crashed endpoint cannot send either.
	if err := b.Send(a.Element(), []byte("from the grave")); err != nil {
		t.Fatalf("send from crashed endpoint errored: %v (must be silent)", err)
	}
	time.Sleep(20 * time.Millisecond)
	col.mu.Lock()
	n := len(col.msgs)
	col.mu.Unlock()
	if n != 0 {
		t.Fatalf("crashed endpoint received %d messages", n)
	}
	if got := reg.Counter("net/crash-dropped").Value(); got != 2 {
		t.Errorf("net/crash-dropped = %d, want 2", got)
	}

	// Restart restores delivery with the same element identity.
	if !f.Restart(memID(t, b)) {
		t.Fatal("Restart reported unknown endpoint")
	}
	if err := a.Send(b.Element(), []byte("back")); err != nil {
		t.Fatal(err)
	}
	msgs := col.wait(t, 1)
	if string(msgs[0]) != "back" {
		t.Errorf("got %q after restart", msgs[0])
	}
}

// TestFabricPerLinkFaults: latency and loss scoped to one endpoint
// pair leave other links untouched.
func TestFabricPerLinkFaults(t *testing.T) {
	f := NewFabric(nil)
	defer f.Close()
	a, _ := f.NewEndpoint()
	b, _ := f.NewEndpoint()
	c, _ := f.NewEndpoint()
	colB, colC := newCollector(), newCollector()
	b.SetHandler(colB.handler)
	c.SetHandler(colC.handler)

	// Total loss on a↔b only.
	f.SetLinkLoss(memID(t, a), memID(t, b), 1.0)
	for i := 0; i < 10; i++ {
		if err := a.Send(b.Element(), []byte("lost")); err != nil {
			t.Fatal(err)
		}
		if err := a.Send(c.Element(), []byte("ok")); err != nil {
			t.Fatal(err)
		}
	}
	colC.wait(t, 10)
	colB.mu.Lock()
	got := len(colB.msgs)
	colB.mu.Unlock()
	if got != 0 {
		t.Fatalf("lossy link delivered %d/10", got)
	}

	// Heal the link; add latency instead. Delivery resumes, delayed.
	f.ClearLink(memID(t, a), memID(t, b))
	f.SetLinkLatency(memID(t, a), memID(t, b), 30*time.Millisecond)
	start := time.Now()
	if err := a.Send(b.Element(), []byte("slow")); err != nil {
		t.Fatal(err)
	}
	colB.wait(t, 1)
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("per-link latency not applied: delivered in %v", d)
	}
}

// TestFabricDuplication: with duplication at 1.0 every message arrives
// twice — upper layers must tolerate at-least-once delivery.
func TestFabricDuplication(t *testing.T) {
	reg := metrics.NewRegistry()
	f := NewFabric(reg)
	defer f.Close()
	a, _ := f.NewEndpoint()
	b, _ := f.NewEndpoint()
	col := newCollector()
	b.SetHandler(col.handler)
	f.SetDuplicate(1.0)
	for i := 0; i < 5; i++ {
		if err := a.Send(b.Element(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	col.wait(t, 10) // 5 originals + 5 duplicates
	if got := reg.Counter("net/duplicated").Value(); got != 5 {
		t.Errorf("net/duplicated = %d, want 5", got)
	}
}

// TestFabricReorder: delayed delivery of a random subset reorders the
// stream; every message still arrives exactly once.
func TestFabricReorder(t *testing.T) {
	reg := metrics.NewRegistry()
	f := NewFabric(reg)
	defer f.Close()
	a, _ := f.NewEndpoint()
	b, _ := f.NewEndpoint()
	col := newCollector()
	b.SetHandler(col.handler)
	f.SetReorder(0.5, 5*time.Millisecond)
	const n = 40
	for i := 0; i < n; i++ {
		if err := a.Send(b.Element(), []byte(fmt.Sprintf("%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	msgs := col.wait(t, n)
	if len(msgs) != n {
		t.Fatalf("got %d messages, want %d", len(msgs), n)
	}
	seen := make(map[string]int, n)
	for _, m := range msgs {
		seen[string(m)]++
	}
	for i := 0; i < n; i++ {
		if seen[fmt.Sprintf("%02d", i)] != 1 {
			t.Fatalf("message %02d delivered %d times", i, seen[fmt.Sprintf("%02d", i)])
		}
	}
	if reg.Counter("net/reordered").Value() == 0 {
		t.Error("no messages were reordered at p=0.5")
	}
}

// TestFabricPartitionHeals: a Block/Unblock cycle must fully restore
// delivery in both directions (the transport half of the heal path;
// the binding-cache half is covered in rt's partition tests).
func TestFabricPartitionHeals(t *testing.T) {
	f := NewFabric(nil)
	defer f.Close()
	a, _ := f.NewEndpoint()
	b, _ := f.NewEndpoint()
	colA, colB := newCollector(), newCollector()
	a.SetHandler(colA.handler)
	b.SetHandler(colB.handler)

	f.Block(memID(t, a), memID(t, b))
	if err := a.Send(b.Element(), []byte("x")); err != ErrUnreachable {
		t.Fatalf("send across partition = %v, want ErrUnreachable", err)
	}
	if err := b.Send(a.Element(), []byte("x")); err != ErrUnreachable {
		t.Fatalf("reverse send across partition = %v, want ErrUnreachable", err)
	}

	f.Unblock(memID(t, a), memID(t, b))
	if err := a.Send(b.Element(), []byte("ping")); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	if err := b.Send(a.Element(), []byte("pong")); err != nil {
		t.Fatalf("reverse send after heal: %v", err)
	}
	if got := colB.wait(t, 1); string(got[0]) != "ping" {
		t.Errorf("b got %q", got[0])
	}
	if got := colA.wait(t, 1); string(got[0]) != "pong" {
		t.Errorf("a got %q", got[0])
	}
}

// TestTCPDropSurfaced is the regression test for silent frame loss on
// writer death: when a destination dies with frames queued or
// mid-batch, the loss must be counted in net/tcp_dropped and reported
// to a subsequent Send as an error — never swallowed.
func TestTCPDropSurfaced(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := &TCP{Registry: reg}
	a, err := tr.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := tr.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	col := newCollector()
	b.SetHandler(col.handler)

	// Establish the connection.
	if err := a.Send(b.Element(), []byte("warm")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)

	// Kill the destination: listener and accepted sockets die, so the
	// writer's socket will fail once the kernel notices.
	b.Close()

	// Pump large frames until the failure surfaces. The kernel buffers
	// some, then the writer hits a write error, fails to redial (the
	// listener is gone), and drops what it holds; the NEXT Send gets
	// the loss report.
	payload := make([]byte, 64<<10)
	deadline := time.Now().Add(5 * time.Second)
	var sendErr error
	for time.Now().Before(deadline) {
		if err := a.Send(b.Element(), payload); err != nil {
			sendErr = err
			break
		}
	}
	if sendErr == nil {
		t.Fatal("no send error surfaced after destination death: frames were lost silently")
	}
	if got := reg.Counter("net/tcp_dropped").Value(); got == 0 {
		t.Error("net/tcp_dropped = 0; dropped frames were not counted")
	}
	t.Logf("surfaced: %v (net/tcp_dropped=%d)", sendErr, reg.Counter("net/tcp_dropped").Value())
}
