package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/oa"
)

// maxFrame bounds one TCP frame (matches the wire package's argument
// limits with headroom).
const maxFrame = 32 << 20

// sendQueueDepth bounds the frames queued to one destination's writer
// goroutine; a full queue applies backpressure to senders.
const sendQueueDepth = 256

// writerBatch caps how many queued frames the writer coalesces into one
// buffered flush. Batching amortizes the kernel write; the writer still
// flushes immediately when its queue runs dry, so an isolated message
// pays no added latency.
const writerBatch = 64

// pooledReadLimit is the largest frame served from the pooled read
// buffer; larger frames get a one-off allocation.
const pooledReadLimit = 64 << 10

// framePool recycles outbound frame buffers (4-byte length prefix +
// payload) between Send and the writer goroutine.
var framePool = sync.Pool{
	New: func() any { return &frameBuf{b: make([]byte, 0, 2048)} },
}

type frameBuf struct{ b []byte }

func putFrame(f *frameBuf) {
	if cap(f.b) > pooledReadLimit {
		f.b = make([]byte, 0, 2048)
	}
	framePool.Put(f)
}

// readBufPool recycles inbound frame buffers for frames under
// pooledReadLimit. Handlers must not retain the buffer (see Handler).
var readBufPool = sync.Pool{
	New: func() any { return &frameBuf{b: make([]byte, pooledReadLimit)} },
}

// TCP is a Transport over real TCP sockets, for multi-process Legion
// deployments. Each endpoint owns one listener; messages are
// length-prefixed frames. Outbound traffic to each destination flows
// through a dedicated writer goroutine behind a bounded queue: senders
// never hold a lock across a kernel write, consecutive frames are
// coalesced into one buffered flush, and redialing happens in the
// writer. Connections are cached per destination and redialed on
// failure.
type TCP struct {
	// ListenHost is the host/IP to bind listeners on. Defaults to
	// 127.0.0.1, which keeps tests and examples self-contained.
	ListenHost string
	// Registry receives transport metrics (net/tcp_dropped: outbound
	// frames lost when a destination's connection died). Nil discards.
	Registry *metrics.Registry
}

// NewEndpoint starts a listener on an ephemeral port.
func (t *TCP) NewEndpoint() (Endpoint, error) {
	host := t.ListenHost
	if host == "" {
		host = "127.0.0.1"
	}
	reg := t.Registry
	if reg == nil {
		reg = metrics.Nop
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	addr := ln.Addr().(*net.TCPAddr)
	elem, err := oa.IPElement(addr.IP, uint16(addr.Port), 0)
	if err != nil {
		ln.Close()
		return nil, err
	}
	ep := &tcpEndpoint{
		ln:       ln,
		elem:     elem,
		conns:    make(map[string]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
		cDropped: reg.Counter("net/tcp_dropped"),
	}
	go ep.acceptLoop()
	return ep, nil
}

type tcpEndpoint struct {
	ln   net.Listener
	elem oa.Element

	hmu     sync.Mutex
	handler Handler

	cmu   sync.Mutex
	conns map[string]*tcpConn

	// amu guards accepted, the inbound sockets currently being read;
	// Close tears them down so a closed endpoint goes fully silent
	// (without this, peers of a dead endpoint would keep writing into
	// still-open sockets and never learn of the death).
	amu      sync.Mutex
	accepted map[net.Conn]struct{}

	// cDropped counts outbound frames lost because a destination's
	// connection died with frames queued or mid-batch (net/tcp_dropped).
	cDropped *metrics.Counter

	done chan struct{}
	once sync.Once
}

// tcpConn is the send-side state for one destination: the current
// writer generation plus the sticky error from the last failed one.
type tcpConn struct {
	hostport string

	mu      sync.Mutex
	w       *tcpWriter // nil when no live connection
	dropped uint64     // frames lost when a writer died; surfaced on the next Send
}

// noteDropped records n lost frames against the destination: they are
// counted in net/tcp_dropped immediately and reported to the next Send
// as an error, so the loss is never silent.
func (e *tcpEndpoint) noteDropped(tc *tcpConn, n uint64) {
	if n == 0 {
		return
	}
	e.cDropped.Add(n)
	tc.mu.Lock()
	tc.dropped += n
	tc.mu.Unlock()
}

// takeDropped consumes the pending drop report.
func (tc *tcpConn) takeDropped() uint64 {
	tc.mu.Lock()
	n := tc.dropped
	tc.dropped = 0
	tc.mu.Unlock()
	return n
}

// tcpWriter is one connection generation: a socket, a bounded frame
// queue, and the goroutine that drains it.
type tcpWriter struct {
	cmu  sync.Mutex // guards conn (replaced on in-writer redial)
	conn net.Conn
	ch   chan *frameBuf
	dead chan struct{} // closed when this generation fails
	once sync.Once
}

func (w *tcpWriter) kill() { w.once.Do(func() { close(w.dead) }) }

// swapConn replaces the socket after a successful redial.
func (w *tcpWriter) swapConn(conn net.Conn) {
	w.cmu.Lock()
	old := w.conn
	w.conn = conn
	w.cmu.Unlock()
	old.Close()
}

// closeConn closes the current socket (whichever generation holds it).
func (w *tcpWriter) closeConn() {
	w.cmu.Lock()
	conn := w.conn
	w.cmu.Unlock()
	conn.Close()
}

func (e *tcpEndpoint) Element() oa.Element { return e.elem }

func (e *tcpEndpoint) SetHandler(h Handler) {
	e.hmu.Lock()
	defer e.hmu.Unlock()
	e.handler = h
}

func (e *tcpEndpoint) handle(data []byte) {
	e.hmu.Lock()
	h := e.handler
	e.hmu.Unlock()
	if h != nil {
		h(data)
	}
}

func (e *tcpEndpoint) acceptLoop() {
	backoff := time.Millisecond
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			select {
			case <-e.done:
				return
			default:
			}
			// Transient accept failure (e.g. fd exhaustion): back off
			// instead of spinning hot on the error.
			select {
			case <-e.done:
				return
			case <-time.After(backoff):
			}
			if backoff < 200*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		backoff = time.Millisecond
		e.amu.Lock()
		e.accepted[conn] = struct{}{}
		e.amu.Unlock()
		go e.readLoop(conn)
	}
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer func() {
		conn.Close()
		e.amu.Lock()
		delete(e.accepted, conn)
		e.amu.Unlock()
	}()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return
		}
		if n <= pooledReadLimit {
			fb := readBufPool.Get().(*frameBuf)
			frame := fb.b[:n]
			if _, err := io.ReadFull(conn, frame); err != nil {
				readBufPool.Put(fb)
				return
			}
			e.handle(frame)
			readBufPool.Put(fb)
		} else {
			frame := make([]byte, n)
			if _, err := io.ReadFull(conn, frame); err != nil {
				return
			}
			e.handle(frame)
		}
	}
}

// Send frames data and queues it to the destination's writer goroutine,
// dialing synchronously when no live connection exists (so an
// unreachable destination is still reported to the caller). The data
// buffer is copied before Send returns.
func (e *tcpEndpoint) Send(to oa.Element, data []byte) error {
	hostport, ok := oa.IPHostPort(to)
	if !ok {
		return ErrUnreachable
	}
	if len(data) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(data))
	}
	select {
	case <-e.done:
		return ErrClosed
	default:
	}

	fb := framePool.Get().(*frameBuf)
	b := fb.b[:0]
	b = binary.BigEndian.AppendUint32(b, uint32(len(data)))
	b = append(b, data...)
	fb.b = b

	tc := e.connFor(hostport)
	if n := tc.takeDropped(); n > 0 {
		// A previous writer to this destination died with frames in
		// hand. Surfacing the loss here (instead of dropping silently)
		// lets the rt layer treat the destination as unavailable and
		// retransmit; this frame is sacrificed to deliver the report.
		putFrame(fb)
		return fmt.Errorf("%w: %d frame(s) to %s lost on connection failure", ErrUnreachable, n, hostport)
	}
	for attempt := 0; attempt < 2; attempt++ {
		w, err := e.writerFor(tc)
		if err != nil {
			putFrame(fb)
			return fmt.Errorf("%w: %v", ErrUnreachable, err)
		}
		select {
		case w.ch <- fb:
			return nil
		case <-w.dead:
			// This generation failed while we held it; dial a fresh one.
			continue
		case <-e.done:
			putFrame(fb)
			return ErrClosed
		}
	}
	putFrame(fb)
	return ErrUnreachable
}

// writerFor returns the destination's live writer, dialing a new
// connection (and starting its writer goroutine) if none exists.
func (e *tcpEndpoint) writerFor(tc *tcpConn) (*tcpWriter, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.w != nil {
		select {
		case <-tc.w.dead:
			tc.w = nil // fell over since the last send
		default:
			return tc.w, nil
		}
	}
	conn, err := net.Dial("tcp", tc.hostport)
	if err != nil {
		return nil, err
	}
	w := &tcpWriter{
		conn: conn,
		ch:   make(chan *frameBuf, sendQueueDepth),
		dead: make(chan struct{}),
	}
	tc.w = w
	go e.writeLoop(tc, w)
	return w, nil
}

// writeLoop drains one destination's queue: it coalesces up to
// writerBatch pending frames into a buffered writer, flushes when the
// queue runs dry or the batch fills, and on a write error redials once
// and keeps draining (frames caught mid-failure are lost, as the
// transport contract permits) before declaring the generation dead.
func (e *tcpEndpoint) writeLoop(tc *tcpConn, w *tcpWriter) {
	bw := bufio.NewWriterSize(w.conn, 64<<10)
	redialed := false
	for {
		select {
		case fb := <-w.ch:
			batched := 1
			err := writeFrame(bw, fb)
			for err == nil && batched < writerBatch {
				select {
				case fb2 := <-w.ch:
					err = writeFrame(bw, fb2)
					batched++
					continue
				default:
				}
				break
			}
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				// The batch's frames were consumed and may not have
				// reached the peer (the buffered writer died mid-batch):
				// account them as dropped — TCP gives no delivery
				// receipt, and an undercounted loss is a silent one.
				e.noteDropped(tc, uint64(batched))
				if !redialed {
					redialed = true
					if conn, derr := net.Dial("tcp", tc.hostport); derr == nil {
						w.swapConn(conn)
						bw = bufio.NewWriterSize(conn, 64<<10)
						continue // keep draining on the fresh socket
					}
				}
				e.failWriter(tc, w)
				return
			}
			redialed = false
		case <-e.done:
			bw.Flush()
			w.closeConn()
			w.kill()
			return
		}
	}
}

// writeFrame copies one frame into the buffered writer and recycles it.
func writeFrame(bw *bufio.Writer, fb *frameBuf) error {
	_, err := bw.Write(fb.b)
	putFrame(fb)
	return err
}

// failWriter retires a dead connection generation: unhooks it so the
// next Send redials, closes the socket, and drains queued frames. The
// drained frames cannot be delivered, but the loss is NOT silent: each
// is counted in net/tcp_dropped and reported to the destination's next
// Send as an error, so callers learn the channel lost traffic.
func (e *tcpEndpoint) failWriter(tc *tcpConn, w *tcpWriter) {
	tc.mu.Lock()
	if tc.w == w {
		tc.w = nil
	}
	tc.mu.Unlock()
	w.kill()
	w.closeConn()
	var lost uint64
	for {
		select {
		case fb := <-w.ch:
			putFrame(fb)
			lost++
		default:
			e.noteDropped(tc, lost)
			return
		}
	}
}

func (e *tcpEndpoint) connFor(hostport string) *tcpConn {
	e.cmu.Lock()
	defer e.cmu.Unlock()
	tc, ok := e.conns[hostport]
	if !ok {
		tc = &tcpConn{hostport: hostport}
		e.conns[hostport] = tc
	}
	return tc
}

func (e *tcpEndpoint) Close() error {
	e.once.Do(func() {
		close(e.done)
		e.ln.Close()
		e.amu.Lock()
		for conn := range e.accepted {
			conn.Close()
		}
		e.amu.Unlock()
		e.cmu.Lock()
		for _, tc := range e.conns {
			tc.mu.Lock()
			if tc.w != nil {
				tc.w.kill()
				tc.w.closeConn()
				tc.w = nil
			}
			tc.mu.Unlock()
		}
		e.cmu.Unlock()
	})
	return nil
}
