package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buf"
	"repro/internal/metrics"
	"repro/internal/oa"
)

// maxFrame bounds one TCP frame (matches the wire package's argument
// limits with headroom).
const maxFrame = 32 << 20

// sendQueueDepth bounds the frames queued to one reactor's writer
// loop; a full queue applies backpressure to senders.
const sendQueueDepth = 256

// writerBatch caps how many queued frames one writev gathers. Batching
// amortizes the kernel write; the writer still flushes immediately when
// its queue runs dry, so an isolated message pays no added latency.
const writerBatch = 64

// TCP is a Transport over real TCP sockets, for multi-process Legion
// deployments. Each endpoint owns one listener; messages are
// length-prefixed frames.
//
// Outbound traffic is organized as per-destination reactor shards: each
// destination gets up to Reactors independent connections, each owned
// by one event loop that drains a bounded queue with writev
// (net.Buffers) batching — the frame headers and reference-counted
// payload buffers go to the kernel as one iovec list, so a frame is
// never copied between the sender and the socket. Sends are sharded
// round-robin across the reactors, so concurrent senders to one peer
// do not serialize on a single writer goroutine or socket. Flushing is
// adaptive: a loop that finds its queue dry writes immediately; under
// load it coalesces up to writerBatch frames per syscall.
//
// Inbound, every accepted connection (one per remote reactor) gets its
// own read loop delivering frames in pooled ref-counted buffers.
type TCP struct {
	// ListenHost is the host/IP to bind listeners on. Defaults to
	// 127.0.0.1, which keeps tests and examples self-contained.
	ListenHost string
	// Registry receives transport metrics (net/tcp_dropped: outbound
	// frames lost when a destination's connection died). Nil discards.
	Registry *metrics.Registry
	// Reactors is the number of parallel connections (and event loops)
	// per destination. 0 means min(GOMAXPROCS, 8). Frames to one
	// destination are sharded across reactors and may arrive out of
	// order relative to each other, which the transport contract
	// permits.
	Reactors int
}

// NewEndpoint starts a listener on an ephemeral port.
func (t *TCP) NewEndpoint() (Endpoint, error) {
	host := t.ListenHost
	if host == "" {
		host = "127.0.0.1"
	}
	reg := t.Registry
	if reg == nil {
		reg = metrics.Nop
	}
	reactors := t.Reactors
	if reactors <= 0 {
		reactors = runtime.GOMAXPROCS(0)
		if reactors > 8 {
			reactors = 8
		}
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	addr := ln.Addr().(*net.TCPAddr)
	elem, err := oa.IPElement(addr.IP, uint16(addr.Port), 0)
	if err != nil {
		ln.Close()
		return nil, err
	}
	ep := &tcpEndpoint{
		ln:       ln,
		elem:     elem,
		nShards:  reactors,
		accepted: make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
		cDropped: reg.Counter("net/tcp_dropped"),
	}
	go ep.acceptLoop()
	return ep, nil
}

type tcpEndpoint struct {
	ln      net.Listener
	elem    oa.Element
	nShards int

	handler atomic.Pointer[FrameHandler]

	// conns maps destination elements to their send-side state. Keyed
	// by the element itself (a comparable value) so the send fast path
	// never formats a host:port string; lock-free once populated.
	conns sync.Map // oa.Element -> *tcpConn

	// amu guards accepted, the inbound sockets currently being read;
	// Close tears them down so a closed endpoint goes fully silent
	// (without this, peers of a dead endpoint would keep writing into
	// still-open sockets and never learn of the death).
	amu      sync.Mutex
	accepted map[net.Conn]struct{}

	// cDropped counts outbound frames lost because a destination's
	// connection died with frames queued or mid-batch (net/tcp_dropped).
	cDropped *metrics.Counter

	done chan struct{}
	once sync.Once
}

// tcpConn is the send-side state for one destination: the reactor
// shards (each one connection generation + event loop) plus the sticky
// drop count from failed generations.
type tcpConn struct {
	hostport string
	rr       atomic.Uint32 // round-robin shard choice
	dropped  atomic.Uint64 // frames lost when a writer died; surfaced on the next Send

	mu     sync.Mutex
	shards []*tcpWriter // nil slots: not yet dialed (or fell over)
}

// noteDropped records n lost frames against the destination: they are
// counted in net/tcp_dropped immediately and reported to the next Send
// as an error, so the loss is never silent.
func (e *tcpEndpoint) noteDropped(tc *tcpConn, n uint64) {
	if n == 0 {
		return
	}
	e.cDropped.Add(n)
	tc.dropped.Add(n)
}

// takeDropped consumes the pending drop report.
func (tc *tcpConn) takeDropped() uint64 {
	return tc.dropped.Swap(0)
}

// tcpWriter is one reactor shard generation: a socket, a bounded frame
// queue, and the event loop that drains it.
type tcpWriter struct {
	shard int
	cmu   sync.Mutex // guards conn (replaced on in-loop redial)
	conn  net.Conn
	// wmu serializes actual socket writes between the event loop and
	// SendBuf's direct-write fast path (see SendBuf).
	wmu  sync.Mutex
	ch   chan *buf.Buffer
	dead chan struct{} // closed when this generation fails
	once sync.Once
}

func (w *tcpWriter) kill() { w.once.Do(func() { close(w.dead) }) }

// swapConn replaces the socket after a successful redial.
func (w *tcpWriter) swapConn(conn net.Conn) {
	w.cmu.Lock()
	old := w.conn
	w.conn = conn
	w.cmu.Unlock()
	old.Close()
}

// closeConn closes the current socket (whichever generation holds it).
func (w *tcpWriter) closeConn() {
	w.cmu.Lock()
	conn := w.conn
	w.cmu.Unlock()
	conn.Close()
}

func (w *tcpWriter) current() net.Conn {
	w.cmu.Lock()
	conn := w.conn
	w.cmu.Unlock()
	return conn
}

func (e *tcpEndpoint) Element() oa.Element { return e.elem }

func (e *tcpEndpoint) SetHandler(h Handler) {
	fh := FrameHandler(func(_ *buf.Buffer, data []byte, _ bool) { h(data) })
	e.handler.Store(&fh)
}

func (e *tcpEndpoint) SetFrameHandler(h FrameHandler) {
	e.handler.Store(&h)
}

func (e *tcpEndpoint) handle(fb *buf.Buffer) {
	if h := e.handler.Load(); h != nil {
		(*h)(fb, fb.B, false)
	}
}

func (e *tcpEndpoint) acceptLoop() {
	backoff := time.Millisecond
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			select {
			case <-e.done:
				return
			default:
			}
			// Transient accept failure (e.g. fd exhaustion): back off
			// instead of spinning hot on the error.
			select {
			case <-e.done:
				return
			case <-time.After(backoff):
			}
			if backoff < 200*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		backoff = time.Millisecond
		e.amu.Lock()
		e.accepted[conn] = struct{}{}
		e.amu.Unlock()
		go e.readLoop(conn)
	}
}

// readChunk is the read loop's accumulation window. It matches
// buf.MaxPooled so the window buffer itself recycles through the pool.
const readChunk = buf.MaxPooled

// readLoop drains one inbound connection with coalesced reads: instead
// of two syscalls per frame (header, then payload), it reads whatever
// the socket has — often a full frame, under load many — into one
// pooled window buffer and carves frames out of it as views. Handlers
// that park a frame past their return take a reference on the window
// (Frame.Own), so frame payloads are never copied out of the read
// buffer; the loop moves to a fresh window when parked references pin
// the current one.
func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer func() {
		conn.Close()
		e.amu.Lock()
		delete(e.accepted, conn)
		e.amu.Unlock()
	}()
	rb := buf.GetSize(readChunk)
	defer func() { rb.Release() }()
	start, end := 0, 0 // rb.B[start:end] holds unparsed bytes
	for {
		if start == end {
			// Fully drained. Rewind if we are the only holder; parked
			// frames still viewing this window force a fresh one.
			if rb.Refs() == 1 {
				start, end = 0, 0
			} else {
				rb.Release()
				rb = buf.GetSize(readChunk)
				start, end = 0, 0
			}
		} else if end == len(rb.B) {
			// Out of room with a partial frame in hand: compact it to
			// the front, or — when parked frames pin the window, or the
			// frame is bigger than the window — carry it into a larger
			// fresh buffer.
			need := end - start
			if n := 4 + frameLen(rb.B[start:end]); n > need {
				need = n
			}
			if rb.Refs() == 1 && need <= len(rb.B) {
				copy(rb.B, rb.B[start:end])
			} else {
				size := readChunk
				if need > size {
					size = need
				}
				nb := buf.GetSize(size)
				copy(nb.B, rb.B[start:end])
				rb.Release()
				rb = nb
			}
			end -= start
			start = 0
		}
		n, err := conn.Read(rb.B[end:])
		if n > 0 {
			end += n
			for end-start >= 4 {
				fn := binary.BigEndian.Uint32(rb.B[start:])
				if fn == 0 || fn > maxFrame {
					return
				}
				total := 4 + int(fn)
				if end-start < total {
					break
				}
				if h := e.handler.Load(); h != nil {
					(*h)(rb, rb.B[start+4:start+total], false)
				}
				start += total
			}
		}
		if err != nil {
			return
		}
	}
}

// frameLen reads the pending frame's payload length from a partial
// region (0 when not even the header has arrived yet).
func frameLen(b []byte) int {
	if len(b) < 4 {
		return 0
	}
	return int(binary.BigEndian.Uint32(b))
}

// Send copies data into a pooled frame and queues it; SendBuf is the
// zero-copy form.
func (e *tcpEndpoint) Send(to oa.Element, data []byte) error {
	fb := buf.Get()
	fb.B = append(fb.B, data...)
	err := e.SendBuf(to, fb)
	fb.Release()
	return err
}

// SendBuf queues one frame (the whole of b.B) to a reactor shard of
// the destination, dialing synchronously when that shard has no live
// connection (so an unreachable destination is still reported to the
// caller). The shard's event loop holds its own reference on b until
// the bytes reach the kernel.
func (e *tcpEndpoint) SendBuf(to oa.Element, b *buf.Buffer) error {
	if to.Type != oa.TypeIP {
		return ErrUnreachable
	}
	if len(b.B) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(b.B))
	}
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	tc := e.connFor(to)
	if n := tc.takeDropped(); n > 0 {
		// A previous writer to this destination died with frames in
		// hand. Surfacing the loss here (instead of dropping silently)
		// lets the rt layer treat the destination as unavailable and
		// retransmit.
		return fmt.Errorf("%w: %d frame(s) to %s lost on connection failure", ErrUnreachable, n, tc.hostport)
	}
	shard := int(tc.rr.Add(1)) % e.nShards
	for attempt := 0; attempt < 2; attempt++ {
		w, err := e.writerFor(tc, shard)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrUnreachable, err)
		}
		// Adaptive flush, idle half: when nothing is queued and the
		// socket is free, write the frame right here on the sender's
		// goroutine — the syscall happens immediately instead of after
		// two scheduler handoffs (enqueue, writer wake-up). Under load
		// the TryLock fails (the event loop is mid-writev) or the queue
		// is non-empty, and the frame joins the queue to be coalesced
		// into the loop's next batch. Frames sent directly may overtake
		// queued frames of other senders, which the transport contract
		// already permits (reactor shards reorder anyway).
		if len(w.ch) == 0 && w.wmu.TryLock() {
			err := w.writeOne(b)
			w.wmu.Unlock()
			if err != nil {
				// The socket died under us mid-frame; the stream may be
				// truncated, so this generation is done. The frame is
				// lost and counted, but unlike a queued drop the loss
				// is reported to THIS send directly, so there is no
				// deferred next-Send report to file.
				e.cDropped.Add(1)
				e.failWriter(tc, w)
				return fmt.Errorf("%w: %v", ErrUnreachable, err)
			}
			return nil
		}
		ref := b.Retain()
		select {
		case w.ch <- ref:
			return nil
		case <-w.dead:
			// This generation failed while we held it; dial a fresh one.
			ref.Release()
			continue
		case <-e.done:
			ref.Release()
			return ErrClosed
		}
	}
	return ErrUnreachable
}

// writeOne writes a single length-prefixed frame to the current socket;
// the caller holds wmu.
func (w *tcpWriter) writeOne(b *buf.Buffer) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b.B)))
	iov := net.Buffers{hdr[:], b.B}
	_, err := iov.WriteTo(w.current())
	return err
}

// writerFor returns the live writer of one reactor shard, dialing a new
// connection (and starting its event loop) if none exists.
func (e *tcpEndpoint) writerFor(tc *tcpConn, shard int) (*tcpWriter, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.shards == nil {
		tc.shards = make([]*tcpWriter, e.nShards)
	}
	if w := tc.shards[shard]; w != nil {
		select {
		case <-w.dead:
			tc.shards[shard] = nil // fell over since the last send
		default:
			return w, nil
		}
	}
	conn, err := net.Dial("tcp", tc.hostport)
	if err != nil {
		return nil, err
	}
	w := &tcpWriter{
		shard: shard,
		conn:  conn,
		ch:    make(chan *buf.Buffer, sendQueueDepth),
		dead:  make(chan struct{}),
	}
	tc.shards[shard] = w
	go e.writeLoop(tc, w)
	return w, nil
}

// writeLoop is one reactor shard's event loop: it gathers whatever is
// queued (up to writerBatch frames), hands the length headers and
// payload buffers to the kernel as one writev, and releases the frame
// references. The gather is adaptive — an empty queue means the frame
// in hand goes out immediately; a busy queue means one syscall carries
// many frames. On a write error the loop redials once and keeps
// draining (frames caught mid-failure are counted and surfaced, never
// silently lost) before declaring the generation dead.
func (e *tcpEndpoint) writeLoop(tc *tcpConn, w *tcpWriter) {
	var hdrs [writerBatch][4]byte
	batch := make([]*buf.Buffer, 0, writerBatch)
	iov := make(net.Buffers, 0, 2*writerBatch)
	redialed := false
	for {
		select {
		case fb := <-w.ch:
			batch = append(batch[:0], fb)
		gather:
			for len(batch) < writerBatch {
				select {
				case fb2 := <-w.ch:
					batch = append(batch, fb2)
				default:
					break gather
				}
			}
			iov = iov[:0]
			for i, b := range batch {
				binary.BigEndian.PutUint32(hdrs[i][:], uint32(len(b.B)))
				iov = append(iov, hdrs[i][:], b.B)
			}
			v := iov // WriteTo consumes its receiver; keep iov's backing array
			w.wmu.Lock()
			_, err := v.WriteTo(w.current())
			w.wmu.Unlock()
			for _, b := range batch {
				b.Release()
			}
			if err != nil {
				// The batch's frames were consumed and may not have
				// reached the peer (the socket died mid-writev): account
				// them as dropped — TCP gives no delivery receipt, and an
				// undercounted loss is a silent one.
				e.noteDropped(tc, uint64(len(batch)))
				if !redialed {
					redialed = true
					if conn, derr := net.Dial("tcp", tc.hostport); derr == nil {
						w.swapConn(conn)
						continue // keep draining on the fresh socket
					}
				}
				e.failWriter(tc, w)
				return
			}
			redialed = false
		case <-w.dead:
			// Another goroutine (a failed direct write) retired this
			// generation; drain what was queued so the loss is counted.
			e.failWriter(tc, w)
			return
		case <-e.done:
			w.closeConn()
			w.kill()
			return
		}
	}
}

// failWriter retires a dead shard generation: unhooks it so the next
// Send redials, closes the socket, and drains queued frames. The
// drained frames cannot be delivered, but the loss is NOT silent: each
// is counted in net/tcp_dropped and reported to the destination's next
// Send as an error, so callers learn the channel lost traffic.
func (e *tcpEndpoint) failWriter(tc *tcpConn, w *tcpWriter) {
	tc.mu.Lock()
	if tc.shards != nil && tc.shards[w.shard] == w {
		tc.shards[w.shard] = nil
	}
	tc.mu.Unlock()
	w.kill()
	w.closeConn()
	var lost uint64
	for {
		select {
		case fb := <-w.ch:
			fb.Release()
			lost++
		default:
			e.noteDropped(tc, lost)
			return
		}
	}
}

func (e *tcpEndpoint) connFor(to oa.Element) *tcpConn {
	if v, ok := e.conns.Load(to); ok {
		return v.(*tcpConn)
	}
	hostport, _ := oa.IPHostPort(to) // to.Type checked by the caller
	v, _ := e.conns.LoadOrStore(to, &tcpConn{hostport: hostport})
	return v.(*tcpConn)
}

func (e *tcpEndpoint) Close() error {
	e.once.Do(func() {
		close(e.done)
		e.ln.Close()
		e.amu.Lock()
		for conn := range e.accepted {
			conn.Close()
		}
		e.amu.Unlock()
		e.conns.Range(func(_, v any) bool {
			tc := v.(*tcpConn)
			tc.mu.Lock()
			for i, w := range tc.shards {
				if w != nil {
					w.kill()
					w.closeConn()
					tc.shards[i] = nil
				}
			}
			tc.mu.Unlock()
			return true
		})
	})
	return nil
}
