package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/oa"
)

// maxFrame bounds one TCP frame (matches the wire package's argument
// limits with headroom).
const maxFrame = 32 << 20

// TCP is a Transport over real TCP sockets, for multi-process Legion
// deployments. Each endpoint owns one listener; messages are
// length-prefixed frames. Outbound connections are cached per
// destination and redialed on failure.
type TCP struct {
	// ListenHost is the host/IP to bind listeners on. Defaults to
	// 127.0.0.1, which keeps tests and examples self-contained.
	ListenHost string
}

// NewEndpoint starts a listener on an ephemeral port.
func (t *TCP) NewEndpoint() (Endpoint, error) {
	host := t.ListenHost
	if host == "" {
		host = "127.0.0.1"
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	addr := ln.Addr().(*net.TCPAddr)
	elem, err := oa.IPElement(addr.IP, uint16(addr.Port), 0)
	if err != nil {
		ln.Close()
		return nil, err
	}
	ep := &tcpEndpoint{
		ln:    ln,
		elem:  elem,
		conns: make(map[string]*tcpConn),
		done:  make(chan struct{}),
	}
	go ep.acceptLoop()
	return ep, nil
}

type tcpEndpoint struct {
	ln   net.Listener
	elem oa.Element

	hmu     sync.Mutex
	handler Handler

	cmu   sync.Mutex
	conns map[string]*tcpConn

	done   chan struct{}
	once   sync.Once
	closed bool
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func (e *tcpEndpoint) Element() oa.Element { return e.elem }

func (e *tcpEndpoint) SetHandler(h Handler) {
	e.hmu.Lock()
	defer e.hmu.Unlock()
	e.handler = h
}

func (e *tcpEndpoint) handle(data []byte) {
	e.hmu.Lock()
	h := e.handler
	e.hmu.Unlock()
	if h != nil {
		h(data)
	}
}

func (e *tcpEndpoint) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			select {
			case <-e.done:
				return
			default:
			}
			continue
		}
		go e.readLoop(conn)
	}
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer conn.Close()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		e.handle(frame)
	}
}

// Send frames data and writes it on a cached connection to the
// destination, dialing (or redialing once) as needed.
func (e *tcpEndpoint) Send(to oa.Element, data []byte) error {
	hostport, ok := oa.IPHostPort(to)
	if !ok {
		return ErrUnreachable
	}
	if len(data) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(data))
	}
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	frame := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(frame, uint32(len(data)))
	copy(frame[4:], data)

	tc := e.connFor(hostport)
	tc.mu.Lock()
	defer tc.mu.Unlock()
	// Try the cached connection first; on any failure, redial once.
	if tc.conn != nil {
		if _, err := tc.conn.Write(frame); err == nil {
			return nil
		}
		tc.conn.Close()
		tc.conn = nil
	}
	conn, err := net.Dial("tcp", hostport)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	if _, err := conn.Write(frame); err != nil {
		conn.Close()
		return fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	tc.conn = conn
	return nil
}

func (e *tcpEndpoint) connFor(hostport string) *tcpConn {
	e.cmu.Lock()
	defer e.cmu.Unlock()
	tc, ok := e.conns[hostport]
	if !ok {
		tc = &tcpConn{}
		e.conns[hostport] = tc
	}
	return tc
}

func (e *tcpEndpoint) Close() error {
	e.once.Do(func() {
		close(e.done)
		e.ln.Close()
		e.cmu.Lock()
		for _, tc := range e.conns {
			tc.mu.Lock()
			if tc.conn != nil {
				tc.conn.Close()
				tc.conn = nil
			}
			tc.mu.Unlock()
		}
		e.cmu.Unlock()
	})
	return nil
}
