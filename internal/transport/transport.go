// Package transport provides the communication facilities Legion
// builds on (§3.3): delivery of encoded messages between endpoints
// named by Object Address Elements. Two implementations are provided:
//
//   - Fabric: an in-process simulated network with configurable
//     latency, message loss, and link partitions, plus per-link
//     counters. It is the substrate for the scalability experiments —
//     the paper's wide-area testbed substituted per DESIGN.md.
//   - TCP: a real TCP transport for multi-process deployments.
//
// Transports move opaque byte strings; framing, retries, and stale
// address handling live in the layers above (internal/rt).
package transport

import (
	"errors"

	"repro/internal/buf"
	"repro/internal/oa"
)

// ErrUnreachable reports that the destination endpoint does not exist,
// is closed, or is partitioned away. The communication layer maps it to
// wire.ErrUnavailable and treats the binding as suspect.
var ErrUnreachable = errors.New("transport: endpoint unreachable")

// ErrClosed reports use of a closed endpoint or transport.
var ErrClosed = errors.New("transport: closed")

// Handler consumes one received message. Handlers are called
// sequentially per endpoint; implementations hand off to mailboxes and
// return quickly. The data buffer is only valid for the duration of
// the call — transports recycle receive buffers — so a handler that
// needs the bytes afterwards must copy them (decoding into an owned
// structure, as wire.Unmarshal does, counts).
type Handler func(data []byte)

// FrameHandler is the zero-copy message consumer. data is the frame
// payload, a view into b — a reference-counted buffer the transport
// holds one reference on for the duration of the call. A handler that
// needs the bytes past its return takes its own reference (b.Retain)
// and releases it when done; no copy is required.
//
// sync reports that the delivery runs synchronously on the sender's
// goroutine (the mem transport's zero-latency path): the sender is
// blocked until the handler returns, so the handler may run the method
// inline without stalling unrelated traffic. When sync is false the
// handler runs on a shared transport goroutine (a TCP read loop, a
// delivery pump) and must hand long work off to a mailbox.
type FrameHandler func(b *buf.Buffer, data []byte, sync bool)

// Endpoint is a send/receive port with a transport-level address.
type Endpoint interface {
	// Element is the Object Address Element other endpoints use to
	// reach this one.
	Element() oa.Element
	// SetHandler installs a copy-contract message consumer (see
	// Handler). One of SetHandler/SetFrameHandler must be called
	// before any message is sent to the endpoint.
	SetHandler(Handler)
	// SetFrameHandler installs the zero-copy consumer; it supersedes
	// any Handler installed via SetHandler.
	SetFrameHandler(FrameHandler)
	// Send delivers data to the endpoint named by to. Delivery is
	// asynchronous and unordered with respect to other sends; an error
	// is returned only for local or addressing failures — silent loss
	// in transit is possible, as on a real network. The data buffer is
	// not referenced after Send returns.
	Send(to oa.Element, data []byte) error
	// SendBuf delivers the contents of b (one whole frame in b.B) to
	// the endpoint named by to without copying: the transport takes its
	// own reference on b for as long as it needs the bytes. The caller
	// keeps its reference and must treat b.B as immutable from the
	// first SendBuf until its own Release — the same buffer may be
	// in flight to several destinations at once.
	SendBuf(to oa.Element, b *buf.Buffer) error
	// Close tears the endpoint down; subsequent sends to it fail with
	// ErrUnreachable.
	Close() error
}

// Transport creates endpoints.
type Transport interface {
	NewEndpoint() (Endpoint, error)
}
