// Package transport provides the communication facilities Legion
// builds on (§3.3): delivery of encoded messages between endpoints
// named by Object Address Elements. Two implementations are provided:
//
//   - Fabric: an in-process simulated network with configurable
//     latency, message loss, and link partitions, plus per-link
//     counters. It is the substrate for the scalability experiments —
//     the paper's wide-area testbed substituted per DESIGN.md.
//   - TCP: a real TCP transport for multi-process deployments.
//
// Transports move opaque byte strings; framing, retries, and stale
// address handling live in the layers above (internal/rt).
package transport

import (
	"errors"

	"repro/internal/oa"
)

// ErrUnreachable reports that the destination endpoint does not exist,
// is closed, or is partitioned away. The communication layer maps it to
// wire.ErrUnavailable and treats the binding as suspect.
var ErrUnreachable = errors.New("transport: endpoint unreachable")

// ErrClosed reports use of a closed endpoint or transport.
var ErrClosed = errors.New("transport: closed")

// Handler consumes one received message. Handlers are called
// sequentially per endpoint; implementations hand off to mailboxes and
// return quickly. The data buffer is only valid for the duration of
// the call — transports recycle receive buffers — so a handler that
// needs the bytes afterwards must copy them (decoding into an owned
// structure, as wire.Unmarshal does, counts).
type Handler func(data []byte)

// Endpoint is a send/receive port with a transport-level address.
type Endpoint interface {
	// Element is the Object Address Element other endpoints use to
	// reach this one.
	Element() oa.Element
	// SetHandler installs the message consumer. It must be called
	// before any message is sent to the endpoint.
	SetHandler(Handler)
	// Send delivers data to the endpoint named by to. Delivery is
	// asynchronous and unordered with respect to other sends; an error
	// is returned only for local or addressing failures — silent loss
	// in transit is possible, as on a real network.
	Send(to oa.Element, data []byte) error
	// Close tears the endpoint down; subsequent sends to it fail with
	// ErrUnreachable.
	Close() error
}

// Transport creates endpoints.
type Transport interface {
	NewEndpoint() (Endpoint, error)
}
