package transport

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/oa"
)

// memBufPool recycles the per-delivery payload copies the fabric makes
// (the sender may reuse its buffer the moment Send returns, so the
// fabric owns a copy until the receiving handler is done with it).
var memBufPool = sync.Pool{
	New: func() any { return &frameBuf{b: make([]byte, 0, 2048)} },
}

func putMemBuf(fb *frameBuf) {
	if cap(fb.b) > pooledReadLimit {
		fb.b = make([]byte, 0, 2048)
	}
	memBufPool.Put(fb)
}

// Fabric is the in-process simulated network. Endpoints are named by
// TypeMem elements carrying a fabric-unique id. The fabric can inject
// per-link latency, probabilistic loss, and partitions, and counts
// per-endpoint traffic so experiments can attribute load.
//
// The delivery fast path (no loss, no latency, no partitions) takes no
// fabric-wide lock: endpoint lookup is a sync.Map read, configuration
// is read through atomics, and the per-message payload copy comes from
// a pool — so the simulated network itself does not serialize the
// concurrent traffic the experiments measure.
type Fabric struct {
	nextID    atomic.Uint64
	closed    atomic.Bool
	endpoints sync.Map // uint64 -> *memEndpoint
	nEps      atomic.Int64

	latency  atomic.Int64  // time.Duration
	lossBits atomic.Uint64 // math.Float64bits of the loss probability
	nBlocked atomic.Int64  // fast "any partitions?" check

	mu      sync.Mutex // guards blocked and rng (slow paths only)
	blocked map[[2]uint64]bool
	rng     *rand.Rand

	reg      *metrics.Registry
	cSent    *metrics.Counter
	cDropped *metrics.Counter
}

// NewFabric builds an empty fabric. Metrics are recorded into reg;
// pass metrics.Nop to discard them.
func NewFabric(reg *metrics.Registry) *Fabric {
	if reg == nil {
		reg = metrics.Nop
	}
	return &Fabric{
		blocked:  make(map[[2]uint64]bool),
		rng:      rand.New(rand.NewSource(1)),
		reg:      reg,
		cSent:    reg.Counter("net/sent"),
		cDropped: reg.Counter("net/dropped"),
	}
}

// SetLatency sets a uniform one-way delivery delay for all links.
// Zero (the default) delivers synchronously on the sender's goroutine
// handoff, which is what throughput benchmarks want.
func (f *Fabric) SetLatency(d time.Duration) {
	f.latency.Store(int64(d))
}

// SetLoss sets a probability in [0,1] that any message is silently
// dropped, and the seed that drives the loss process.
func (f *Fabric) SetLoss(p float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng = rand.New(rand.NewSource(seed))
	f.lossBits.Store(math.Float64bits(p))
}

// Block partitions the pair (a,b) in both directions.
func (f *Fabric) Block(a, b uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.blocked[pairKey(a, b)] {
		f.blocked[pairKey(a, b)] = true
		f.nBlocked.Add(1)
	}
}

// Unblock heals the partition between a and b.
func (f *Fabric) Unblock(a, b uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.blocked[pairKey(a, b)] {
		delete(f.blocked, pairKey(a, b))
		f.nBlocked.Add(-1)
	}
}

func pairKey(a, b uint64) [2]uint64 {
	if a > b {
		a, b = b, a
	}
	return [2]uint64{a, b}
}

// NewEndpoint allocates an endpoint with the next fabric id.
func (f *Fabric) NewEndpoint() (Endpoint, error) {
	if f.closed.Load() {
		return nil, ErrClosed
	}
	ep := &memEndpoint{
		fabric: f,
		id:     f.nextID.Add(1),
		queue:  make(chan *frameBuf, 1024),
		done:   make(chan struct{}),
	}
	f.endpoints.Store(ep.id, ep)
	f.nEps.Add(1)
	if f.closed.Load() {
		// Raced with Close; undo the registration.
		if _, loaded := f.endpoints.LoadAndDelete(ep.id); loaded {
			f.nEps.Add(-1)
		}
		return nil, ErrClosed
	}
	go ep.pump()
	return ep, nil
}

// SendFrom delivers data to the endpoint named by to, applying loss,
// latency, and the partition state between from and the destination.
// from may be 0 for "source unknown" (partition checks are skipped).
func (f *Fabric) SendFrom(from uint64, to oa.Element, data []byte) error {
	id, ok := oa.MemID(to)
	if !ok {
		return ErrUnreachable
	}
	if f.closed.Load() {
		return ErrClosed
	}
	v, ok := f.endpoints.Load(id)
	if !ok {
		return ErrUnreachable
	}
	ep := v.(*memEndpoint)
	if from != 0 && f.nBlocked.Load() > 0 {
		f.mu.Lock()
		blocked := f.blocked[pairKey(from, id)]
		f.mu.Unlock()
		if blocked {
			return ErrUnreachable
		}
	}
	f.cSent.Inc()
	if p := math.Float64frombits(f.lossBits.Load()); p > 0 {
		f.mu.Lock()
		drop := f.rng.Float64() < p
		f.mu.Unlock()
		if drop {
			f.cDropped.Inc()
			return nil // silent loss, like the real network
		}
	}
	if latency := time.Duration(f.latency.Load()); latency > 0 {
		// Deferred delivery: copy so the sender may reuse its buffer; the
		// pooled copy is recycled by the receiving pump once the handler
		// returns.
		fb := memBufPool.Get().(*frameBuf)
		fb.b = append(fb.b[:0], data...)
		time.AfterFunc(latency, func() { ep.enqueue(fb) })
		return nil
	}
	// Zero-latency fast path: run the handler inline on the sender's
	// goroutine. The Handler contract only lends the buffer for the
	// duration of the call, and the sender's buffer is valid for exactly
	// that long — so no copy, no queue, and no pump wakeup. Handlers
	// (per their contract) hand off to mailboxes and return quickly, so
	// inline execution cannot recurse deeply.
	select {
	case <-ep.done:
		return ErrUnreachable
	default:
	}
	if h := ep.handler.Load(); h != nil {
		(*h)(data)
	}
	return nil
}

// Close tears down the whole fabric.
func (f *Fabric) Close() error {
	f.closed.Store(true)
	f.endpoints.Range(func(_, v any) bool {
		v.(*memEndpoint).Close()
		return true
	})
	return nil
}

// Endpoints returns the number of live endpoints.
func (f *Fabric) Endpoints() int {
	return int(f.nEps.Load())
}

type memEndpoint struct {
	fabric  *Fabric
	id      uint64
	handler atomic.Pointer[Handler]

	queue chan *frameBuf
	done  chan struct{}
	once  sync.Once
}

func (e *memEndpoint) Element() oa.Element { return oa.MemElement(e.id) }

func (e *memEndpoint) Send(to oa.Element, data []byte) error {
	return e.fabric.SendFrom(e.id, to, data)
}

func (e *memEndpoint) SetHandler(h Handler) {
	e.handler.Store(&h)
}

func (e *memEndpoint) enqueue(fb *frameBuf) {
	select {
	case e.queue <- fb:
	case <-e.done:
		putMemBuf(fb)
	}
}

func (e *memEndpoint) pump() {
	for {
		select {
		case fb := <-e.queue:
			if h := e.handler.Load(); h != nil {
				(*h)(fb.b)
			}
			putMemBuf(fb)
		case <-e.done:
			return
		}
	}
}

func (e *memEndpoint) Close() error {
	e.once.Do(func() {
		close(e.done)
		f := e.fabric
		if _, loaded := f.endpoints.LoadAndDelete(e.id); loaded {
			f.nEps.Add(-1)
		}
	})
	return nil
}
