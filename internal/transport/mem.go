package transport

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buf"
	"repro/internal/metrics"
	"repro/internal/oa"
)

// Fabric is the in-process simulated network. Endpoints are named by
// TypeMem elements carrying a fabric-unique id. The fabric can inject
// per-link latency, probabilistic loss, and partitions, and counts
// per-endpoint traffic so experiments can attribute load.
//
// The delivery fast path (no loss, no latency, no partitions) takes no
// fabric-wide lock: endpoint lookup is a sync.Map read, configuration
// is read through atomics, and the per-message payload copy comes from
// a pool — so the simulated network itself does not serialize the
// concurrent traffic the experiments measure.
type Fabric struct {
	nextID    atomic.Uint64
	closed    atomic.Bool
	endpoints sync.Map // uint64 -> *memEndpoint
	nEps      atomic.Int64

	latency  atomic.Int64  // time.Duration
	lossBits atomic.Uint64 // math.Float64bits of the loss probability
	nBlocked atomic.Int64  // fast "any partitions?" check

	// Chaos knobs (all off by default; each guarded by an atomic "is it
	// on at all?" check so the fault-free fast path pays only loads).
	nLinks      atomic.Int64  // fast "any per-link config?" check
	dupBits     atomic.Uint64 // math.Float64bits of duplication probability
	reorderBits atomic.Uint64 // math.Float64bits of reorder probability
	reorderMax  atomic.Int64  // max extra delay a reordered message gets

	mu      sync.Mutex // guards blocked, links and rng (slow paths only)
	blocked map[[2]uint64]bool
	links   map[[2]uint64]linkCfg

	rng *rand.Rand

	reg        *metrics.Registry
	cSent      *metrics.Counter
	cDropped   *metrics.Counter
	cDup       *metrics.Counter
	cReordered *metrics.Counter
	cCrashDrop *metrics.Counter
}

// linkCfg is per-link chaos: extra one-way latency and loss on one
// unordered endpoint pair.
type linkCfg struct {
	latency time.Duration
	loss    float64
}

// NewFabric builds an empty fabric. Metrics are recorded into reg;
// pass metrics.Nop to discard them.
func NewFabric(reg *metrics.Registry) *Fabric {
	if reg == nil {
		reg = metrics.Nop
	}
	return &Fabric{
		blocked:    make(map[[2]uint64]bool),
		links:      make(map[[2]uint64]linkCfg),
		rng:        rand.New(rand.NewSource(1)),
		reg:        reg,
		cSent:      reg.Counter("net/sent"),
		cDropped:   reg.Counter("net/dropped"),
		cDup:       reg.Counter("net/duplicated"),
		cReordered: reg.Counter("net/reordered"),
		cCrashDrop: reg.Counter("net/crash-dropped"),
	}
}

// SetLatency sets a uniform one-way delivery delay for all links.
// Zero (the default) delivers synchronously on the sender's goroutine
// handoff, which is what throughput benchmarks want.
func (f *Fabric) SetLatency(d time.Duration) {
	f.latency.Store(int64(d))
}

// SetLoss sets a probability in [0,1] that any message is silently
// dropped, and the seed that drives the loss process.
func (f *Fabric) SetLoss(p float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng = rand.New(rand.NewSource(seed))
	f.lossBits.Store(math.Float64bits(p))
}

// Block partitions the pair (a,b) in both directions.
func (f *Fabric) Block(a, b uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.blocked[pairKey(a, b)] {
		f.blocked[pairKey(a, b)] = true
		f.nBlocked.Add(1)
	}
}

// Unblock heals the partition between a and b.
func (f *Fabric) Unblock(a, b uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.blocked[pairKey(a, b)] {
		delete(f.blocked, pairKey(a, b))
		f.nBlocked.Add(-1)
	}
}

func pairKey(a, b uint64) [2]uint64 {
	if a > b {
		a, b = b, a
	}
	return [2]uint64{a, b}
}

// SetLinkLatency adds per-link one-way latency to the (a,b) pair, on
// top of (taking the max with) the fabric-wide latency. Zero removes
// the latency override but keeps any per-link loss.
func (f *Fabric) SetLinkLatency(a, b uint64, d time.Duration) {
	f.setLink(a, b, func(lc *linkCfg) { lc.latency = d })
}

// SetLinkLoss sets a loss probability for the (a,b) pair only.
func (f *Fabric) SetLinkLoss(a, b uint64, p float64) {
	f.setLink(a, b, func(lc *linkCfg) { lc.loss = p })
}

// ClearLink removes all per-link chaos for the (a,b) pair.
func (f *Fabric) ClearLink(a, b uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.links[pairKey(a, b)]; ok {
		delete(f.links, pairKey(a, b))
		f.nLinks.Add(-1)
	}
}

func (f *Fabric) setLink(a, b uint64, mod func(*linkCfg)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := pairKey(a, b)
	lc, existed := f.links[k]
	mod(&lc)
	if lc == (linkCfg{}) {
		if existed {
			delete(f.links, k)
			f.nLinks.Add(-1)
		}
		return
	}
	f.links[k] = lc
	if !existed {
		f.nLinks.Add(1)
	}
}

// SetDuplicate sets a probability in [0,1] that any delivered message
// is delivered twice — the Legion protocol must tolerate at-least-once
// delivery.
func (f *Fabric) SetDuplicate(p float64) {
	f.dupBits.Store(math.Float64bits(p))
}

// SetReorder makes a fraction p of messages arrive up to maxDelay
// late, i.e. after messages sent later — exercising correlation-id
// matching under out-of-order delivery.
func (f *Fabric) SetReorder(p float64, maxDelay time.Duration) {
	f.reorderMax.Store(int64(maxDelay))
	f.reorderBits.Store(math.Float64bits(p))
}

// Crash marks the endpoint named by id as crashed: traffic to and from
// it is SILENTLY dropped (counted in net/crash-dropped), exactly like
// a machine that lost power — senders learn nothing until their reply
// timers expire. It reports whether the endpoint exists.
func (f *Fabric) Crash(id uint64) bool {
	v, ok := f.endpoints.Load(id)
	if !ok {
		return false
	}
	v.(*memEndpoint).down.Store(true)
	return true
}

// Restart brings a crashed endpoint back. The endpoint keeps its
// element identity (same machine, rebooted); whatever state its node
// held is the node's problem — the fabric only restores reachability.
func (f *Fabric) Restart(id uint64) bool {
	v, ok := f.endpoints.Load(id)
	if !ok {
		return false
	}
	v.(*memEndpoint).down.Store(false)
	return true
}

// Crashed reports whether the endpoint named by id is currently down.
func (f *Fabric) Crashed(id uint64) bool {
	v, ok := f.endpoints.Load(id)
	return ok && v.(*memEndpoint).down.Load()
}

// NewEndpoint allocates an endpoint with the next fabric id.
func (f *Fabric) NewEndpoint() (Endpoint, error) {
	if f.closed.Load() {
		return nil, ErrClosed
	}
	ep := &memEndpoint{
		fabric: f,
		id:     f.nextID.Add(1),
		queue:  make(chan *buf.Buffer, 1024),
		done:   make(chan struct{}),
	}
	f.endpoints.Store(ep.id, ep)
	f.nEps.Add(1)
	if f.closed.Load() {
		// Raced with Close; undo the registration.
		if _, loaded := f.endpoints.LoadAndDelete(ep.id); loaded {
			f.nEps.Add(-1)
		}
		return nil, ErrClosed
	}
	go ep.pump()
	return ep, nil
}

// SendFrom delivers data to the endpoint named by to, applying loss,
// latency, and the partition state between from and the destination.
// from may be 0 for "source unknown" (partition checks are skipped).
// The data buffer is copied; SendBuf is the zero-copy form.
func (f *Fabric) SendFrom(from uint64, to oa.Element, data []byte) error {
	fb := buf.Get()
	fb.B = append(fb.B, data...)
	err := f.sendBufFrom(from, to, fb)
	fb.Release()
	return err
}

// sendBufFrom is the delivery core: it applies chaos (loss, latency,
// partitions, duplication, reorder) and routes the reference-counted
// frame to the destination. Every path that needs fb past return takes
// its own reference; the caller keeps (and eventually releases) the
// reference it came in with.
func (f *Fabric) sendBufFrom(from uint64, to oa.Element, fb *buf.Buffer) error {
	id, ok := oa.MemID(to)
	if !ok {
		return ErrUnreachable
	}
	if f.closed.Load() {
		return ErrClosed
	}
	v, ok := f.endpoints.Load(id)
	if !ok {
		return ErrUnreachable
	}
	ep := v.(*memEndpoint)
	if ep.down.Load() {
		// A crashed machine answers nothing — not even an ICMP-style
		// error. Senders discover the crash only by timeout, which is
		// precisely the signal the health layer consumes.
		f.cCrashDrop.Inc()
		return nil
	}
	if from != 0 && f.nBlocked.Load() > 0 {
		f.mu.Lock()
		blocked := f.blocked[pairKey(from, id)]
		f.mu.Unlock()
		if blocked {
			return ErrUnreachable
		}
	}
	f.cSent.Inc()
	latency := time.Duration(f.latency.Load())
	if f.nLinks.Load() > 0 {
		f.mu.Lock()
		lc, ok := f.links[pairKey(from, id)]
		var drop bool
		if ok && lc.loss > 0 {
			drop = f.rng.Float64() < lc.loss
		}
		f.mu.Unlock()
		if drop {
			f.cDropped.Inc()
			return nil
		}
		if ok && lc.latency > latency {
			latency = lc.latency
		}
	}
	if p := math.Float64frombits(f.lossBits.Load()); p > 0 {
		f.mu.Lock()
		drop := f.rng.Float64() < p
		f.mu.Unlock()
		if drop {
			f.cDropped.Inc()
			return nil // silent loss, like the real network
		}
	}
	if p := math.Float64frombits(f.reorderBits.Load()); p > 0 {
		f.mu.Lock()
		hit := f.rng.Float64() < p
		var extra time.Duration
		if hit {
			if maxD := time.Duration(f.reorderMax.Load()); maxD > 0 {
				extra = time.Duration(f.rng.Int63n(int64(maxD))) + time.Microsecond
			} else {
				extra = time.Microsecond
			}
		}
		f.mu.Unlock()
		if hit {
			// Delaying a random subset makes them arrive after
			// messages sent later: out-of-order delivery.
			f.cReordered.Inc()
			latency += extra
		}
	}
	if p := math.Float64frombits(f.dupBits.Load()); p > 0 {
		f.mu.Lock()
		dup := f.rng.Float64() < p
		f.mu.Unlock()
		if dup {
			// At-least-once delivery: a second reference to the same
			// frame arrives slightly after the first.
			f.cDup.Inc()
			dupRef := fb.Retain()
			time.AfterFunc(latency+50*time.Microsecond, func() { ep.enqueue(dupRef) })
		}
	}
	if latency > 0 {
		// Deferred delivery: the fabric takes its own reference so the
		// sender may release (but not mutate) its buffer the moment
		// SendBuf returns; the pump drops the reference once the
		// handler is done.
		ref := fb.Retain()
		time.AfterFunc(latency, func() { ep.enqueue(ref) })
		return nil
	}
	// Zero-latency fast path: run the handler inline on the sender's
	// goroutine — no copy, no queue, no pump wakeup, and no reference
	// traffic (the sender's reference pins the buffer for the duration
	// of the call). sync=true tells the handler the sender is blocked
	// on it, so inline dispatch of the method itself is safe.
	select {
	case <-ep.done:
		return ErrUnreachable
	default:
	}
	ep.deliver(fb, true)
	return nil
}

// Close tears down the whole fabric.
func (f *Fabric) Close() error {
	f.closed.Store(true)
	f.endpoints.Range(func(_, v any) bool {
		v.(*memEndpoint).Close()
		return true
	})
	return nil
}

// Endpoints returns the number of live endpoints.
func (f *Fabric) Endpoints() int {
	return int(f.nEps.Load())
}

type memEndpoint struct {
	fabric  *Fabric
	id      uint64
	handler atomic.Pointer[FrameHandler]
	down    atomic.Bool // crashed: all traffic silently dropped

	queue chan *buf.Buffer
	done  chan struct{}
	once  sync.Once
}

func (e *memEndpoint) Element() oa.Element { return oa.MemElement(e.id) }

func (e *memEndpoint) Send(to oa.Element, data []byte) error {
	if e.down.Load() {
		// A crashed machine sends nothing either; anything a stale
		// goroutine still tries to transmit vanishes.
		e.fabric.cCrashDrop.Inc()
		return nil
	}
	return e.fabric.SendFrom(e.id, to, data)
}

func (e *memEndpoint) SendBuf(to oa.Element, b *buf.Buffer) error {
	if e.down.Load() {
		e.fabric.cCrashDrop.Inc()
		return nil
	}
	return e.fabric.sendBufFrom(e.id, to, b)
}

func (e *memEndpoint) SetHandler(h Handler) {
	fh := FrameHandler(func(_ *buf.Buffer, data []byte, _ bool) { h(data) })
	e.handler.Store(&fh)
}

func (e *memEndpoint) SetFrameHandler(h FrameHandler) {
	e.handler.Store(&h)
}

// deliver runs the installed handler with the fabric's reference to fb
// pinned for the duration of the call.
func (e *memEndpoint) deliver(fb *buf.Buffer, sync bool) {
	if h := e.handler.Load(); h != nil {
		(*h)(fb, fb.B, sync)
	}
}

// enqueue hands a deferred delivery (and its reference) to the pump.
func (e *memEndpoint) enqueue(fb *buf.Buffer) {
	if e.down.Load() {
		// Delivery (e.g. a delayed message) raced a crash: drop it.
		e.fabric.cCrashDrop.Inc()
		fb.Release()
		return
	}
	select {
	case e.queue <- fb:
	case <-e.done:
		fb.Release()
	}
}

func (e *memEndpoint) pump() {
	for {
		select {
		case fb := <-e.queue:
			e.deliver(fb, false)
			fb.Release()
		case <-e.done:
			return
		}
	}
}

func (e *memEndpoint) Close() error {
	e.once.Do(func() {
		close(e.done)
		f := e.fabric
		if _, loaded := f.endpoints.LoadAndDelete(e.id); loaded {
			f.nEps.Add(-1)
		}
		// Drop references parked in the queue; the pump may have exited
		// without draining them.
		for {
			select {
			case fb := <-e.queue:
				fb.Release()
			default:
				return
			}
		}
	})
	return nil
}
