package transport

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/oa"
)

// Fabric is the in-process simulated network. Endpoints are named by
// TypeMem elements carrying a fabric-unique id. The fabric can inject
// per-link latency, probabilistic loss, and partitions, and counts
// per-endpoint traffic so experiments can attribute load.
type Fabric struct {
	mu        sync.Mutex
	nextID    uint64
	endpoints map[uint64]*memEndpoint
	blocked   map[[2]uint64]bool // unordered pair, stored with lo first
	latency   time.Duration
	lossProb  float64
	rng       *rand.Rand
	reg       *metrics.Registry
	closed    bool
}

// NewFabric builds an empty fabric. Metrics are recorded into reg;
// pass metrics.Nop to discard them.
func NewFabric(reg *metrics.Registry) *Fabric {
	if reg == nil {
		reg = metrics.Nop
	}
	return &Fabric{
		endpoints: make(map[uint64]*memEndpoint),
		blocked:   make(map[[2]uint64]bool),
		rng:       rand.New(rand.NewSource(1)),
		reg:       reg,
	}
}

// SetLatency sets a uniform one-way delivery delay for all links.
// Zero (the default) delivers synchronously on the sender's goroutine
// handoff, which is what throughput benchmarks want.
func (f *Fabric) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// SetLoss sets a probability in [0,1] that any message is silently
// dropped, and the seed that drives the loss process.
func (f *Fabric) SetLoss(p float64, seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lossProb = p
	f.rng = rand.New(rand.NewSource(seed))
}

// Block partitions the pair (a,b) in both directions.
func (f *Fabric) Block(a, b uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blocked[pairKey(a, b)] = true
}

// Unblock heals the partition between a and b.
func (f *Fabric) Unblock(a, b uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.blocked, pairKey(a, b))
}

func pairKey(a, b uint64) [2]uint64 {
	if a > b {
		a, b = b, a
	}
	return [2]uint64{a, b}
}

// NewEndpoint allocates an endpoint with the next fabric id.
func (f *Fabric) NewEndpoint() (Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	f.nextID++
	ep := &memEndpoint{
		fabric: f,
		id:     f.nextID,
		queue:  make(chan []byte, 1024),
		done:   make(chan struct{}),
	}
	f.endpoints[ep.id] = ep
	go ep.pump()
	return ep, nil
}

// SendFrom delivers data to the endpoint named by to, applying loss,
// latency, and the partition state between from and the destination.
// from may be 0 for "source unknown" (partition checks are skipped).
func (f *Fabric) SendFrom(from uint64, to oa.Element, data []byte) error {
	id, ok := oa.MemID(to)
	if !ok {
		return ErrUnreachable
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	ep, ok := f.endpoints[id]
	if !ok {
		f.mu.Unlock()
		return ErrUnreachable
	}
	if from != 0 && f.blocked[pairKey(from, id)] {
		f.mu.Unlock()
		return ErrUnreachable
	}
	drop := f.lossProb > 0 && f.rng.Float64() < f.lossProb
	latency := f.latency
	f.mu.Unlock()

	f.reg.Counter("net/sent").Inc()
	if drop {
		f.reg.Counter("net/dropped").Inc()
		return nil // silent loss, like the real network
	}
	// Copy so the sender may reuse its buffer.
	msg := make([]byte, len(data))
	copy(msg, data)
	deliver := func() {
		select {
		case ep.queue <- msg:
		case <-ep.done:
		}
	}
	if latency > 0 {
		time.AfterFunc(latency, deliver)
	} else {
		deliver()
	}
	return nil
}

// Close tears down the whole fabric.
func (f *Fabric) Close() error {
	f.mu.Lock()
	eps := make([]*memEndpoint, 0, len(f.endpoints))
	for _, ep := range f.endpoints {
		eps = append(eps, ep)
	}
	f.closed = true
	f.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// Endpoints returns the number of live endpoints.
func (f *Fabric) Endpoints() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.endpoints)
}

type memEndpoint struct {
	fabric *Fabric
	id     uint64

	mu      sync.Mutex
	handler Handler

	queue chan []byte
	done  chan struct{}
	once  sync.Once
}

func (e *memEndpoint) Element() oa.Element { return oa.MemElement(e.id) }

func (e *memEndpoint) Send(to oa.Element, data []byte) error {
	return e.fabric.SendFrom(e.id, to, data)
}

func (e *memEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

func (e *memEndpoint) pump() {
	for {
		select {
		case msg := <-e.queue:
			e.mu.Lock()
			h := e.handler
			e.mu.Unlock()
			if h != nil {
				h(msg)
			}
		case <-e.done:
			return
		}
	}
}

func (e *memEndpoint) Close() error {
	e.once.Do(func() {
		close(e.done)
		f := e.fabric
		f.mu.Lock()
		delete(f.endpoints, e.id)
		f.mu.Unlock()
	})
	return nil
}
