package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/oa"
)

// collector accumulates received messages behind a lock and signals
// arrivals on a channel.
type collector struct {
	mu   sync.Mutex
	msgs [][]byte
	ch   chan struct{}
}

func newCollector() *collector {
	return &collector{ch: make(chan struct{}, 1024)}
}

func (c *collector) handler(data []byte) {
	// The Handler contract only lends the buffer for the call; copy.
	c.mu.Lock()
	c.msgs = append(c.msgs, append([]byte(nil), data...))
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int) [][]byte {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for message %d/%d", i+1, n)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]byte, len(c.msgs))
	copy(out, c.msgs)
	return out
}

func TestFabricDelivery(t *testing.T) {
	f := NewFabric(nil)
	defer f.Close()
	a, _ := f.NewEndpoint()
	b, _ := f.NewEndpoint()
	col := newCollector()
	b.SetHandler(col.handler)
	if err := a.Send(b.Element(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	msgs := col.wait(t, 1)
	if string(msgs[0]) != "hello" {
		t.Errorf("got %q", msgs[0])
	}
}

func TestFabricCopiesBuffer(t *testing.T) {
	f := NewFabric(nil)
	defer f.Close()
	a, _ := f.NewEndpoint()
	b, _ := f.NewEndpoint()
	col := newCollector()
	b.SetHandler(col.handler)
	buf := []byte("original")
	a.Send(b.Element(), buf)
	copy(buf, "MUTATED!")
	msgs := col.wait(t, 1)
	if string(msgs[0]) != "original" {
		t.Errorf("sender mutation visible to receiver: %q", msgs[0])
	}
}

func TestFabricUnreachable(t *testing.T) {
	f := NewFabric(nil)
	defer f.Close()
	a, _ := f.NewEndpoint()
	if err := a.Send(oa.MemElement(9999), []byte("x")); err != ErrUnreachable {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
	if err := a.Send(oa.Element{Type: oa.TypeIP}, []byte("x")); err != ErrUnreachable {
		t.Errorf("wrong element type: err = %v", err)
	}
}

func TestFabricClosedEndpointUnreachable(t *testing.T) {
	f := NewFabric(nil)
	defer f.Close()
	a, _ := f.NewEndpoint()
	b, _ := f.NewEndpoint()
	b.Close()
	if err := a.Send(b.Element(), []byte("x")); err != ErrUnreachable {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
	if f.Endpoints() != 1 {
		t.Errorf("Endpoints = %d, want 1", f.Endpoints())
	}
}

func TestFabricPartition(t *testing.T) {
	f := NewFabric(nil)
	defer f.Close()
	a, _ := f.NewEndpoint()
	b, _ := f.NewEndpoint()
	col := newCollector()
	b.SetHandler(col.handler)
	aID, _ := oa.MemID(a.Element())
	bID, _ := oa.MemID(b.Element())
	f.Block(aID, bID)
	if err := a.Send(b.Element(), []byte("x")); err != ErrUnreachable {
		t.Fatalf("partitioned send err = %v", err)
	}
	f.Unblock(aID, bID)
	if err := a.Send(b.Element(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
}

func TestFabricLoss(t *testing.T) {
	reg := metrics.NewRegistry()
	f := NewFabric(reg)
	defer f.Close()
	f.SetLoss(1.0, 42) // drop everything
	a, _ := f.NewEndpoint()
	b, _ := f.NewEndpoint()
	col := newCollector()
	b.SetHandler(col.handler)
	for i := 0; i < 10; i++ {
		if err := a.Send(b.Element(), []byte("x")); err != nil {
			t.Fatal(err) // loss is silent, not an error
		}
	}
	if got := reg.Counter("net/dropped").Value(); got != 10 {
		t.Errorf("dropped = %d, want 10", got)
	}
	select {
	case <-col.ch:
		t.Error("message delivered despite 100% loss")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestFabricLatency(t *testing.T) {
	f := NewFabric(nil)
	defer f.Close()
	f.SetLatency(30 * time.Millisecond)
	a, _ := f.NewEndpoint()
	b, _ := f.NewEndpoint()
	col := newCollector()
	b.SetHandler(col.handler)
	start := time.Now()
	a.Send(b.Element(), []byte("x"))
	col.wait(t, 1)
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("delivered in %v, want >= ~30ms", d)
	}
}

func TestFabricManyMessagesConcurrent(t *testing.T) {
	f := NewFabric(nil)
	defer f.Close()
	dst, _ := f.NewEndpoint()
	col := newCollector()
	dst.SetHandler(col.handler)
	const senders, per = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep, _ := f.NewEndpoint()
		wg.Add(1)
		go func(ep Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ep.Send(dst.Element(), []byte{byte(i)})
			}
		}(ep)
	}
	wg.Wait()
	msgs := col.wait(t, senders*per)
	if len(msgs) != senders*per {
		t.Errorf("received %d, want %d", len(msgs), senders*per)
	}
}

func TestFabricCloseRejectsNewEndpoints(t *testing.T) {
	f := NewFabric(nil)
	f.Close()
	if _, err := f.NewEndpoint(); err != ErrClosed {
		t.Errorf("NewEndpoint after close: %v", err)
	}
}

func TestTCPDelivery(t *testing.T) {
	tr := &TCP{}
	a, err := tr.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := tr.NewEndpoint()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	col := newCollector()
	b.SetHandler(col.handler)
	if err := a.Send(b.Element(), []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	msgs := col.wait(t, 1)
	if string(msgs[0]) != "over tcp" {
		t.Errorf("got %q", msgs[0])
	}
}

func TestTCPBidirectionalAndReuse(t *testing.T) {
	tr := &TCP{}
	a, _ := tr.NewEndpoint()
	defer a.Close()
	b, _ := tr.NewEndpoint()
	defer b.Close()
	colA, colB := newCollector(), newCollector()
	a.SetHandler(colA.handler)
	b.SetHandler(colB.handler)
	for i := 0; i < 20; i++ {
		if err := a.Send(b.Element(), []byte("ping")); err != nil {
			t.Fatal(err)
		}
		if err := b.Send(a.Element(), []byte("pong")); err != nil {
			t.Fatal(err)
		}
	}
	colB.wait(t, 20)
	colA.wait(t, 20)
}

func TestTCPUnreachable(t *testing.T) {
	tr := &TCP{}
	a, _ := tr.NewEndpoint()
	defer a.Close()
	// A port that nothing listens on: allocate and immediately close.
	dead, _ := tr.NewEndpoint()
	deadElem := dead.Element()
	dead.Close()
	time.Sleep(10 * time.Millisecond)
	err := a.Send(deadElem, []byte("x"))
	if err == nil {
		t.Error("send to closed endpoint succeeded")
	}
	if err := a.Send(oa.MemElement(1), []byte("x")); err != ErrUnreachable {
		t.Errorf("mem element over tcp: %v", err)
	}
}

func TestTCPRedialAfterPeerRestart(t *testing.T) {
	tr := &TCP{}
	a, _ := tr.NewEndpoint()
	defer a.Close()
	b, _ := tr.NewEndpoint()
	col := newCollector()
	b.SetHandler(col.handler)
	if err := a.Send(b.Element(), []byte("1")); err != nil {
		t.Fatal(err)
	}
	col.wait(t, 1)
	b.Close()
	time.Sleep(20 * time.Millisecond)
	// First send may fail (cached conn broken + listener gone): either
	// an error now or success into a void is acceptable, but it must
	// not hang or panic.
	a.Send(b.Element(), []byte("2"))
	a.Send(b.Element(), []byte("3"))
}

func TestTCPSendAfterCloseFails(t *testing.T) {
	tr := &TCP{}
	a, _ := tr.NewEndpoint()
	b, _ := tr.NewEndpoint()
	defer b.Close()
	a.Close()
	if err := a.Send(b.Element(), []byte("x")); err == nil {
		t.Error("send from closed endpoint succeeded")
	}
}

func TestTCPRejectsOversizeFrame(t *testing.T) {
	tr := &TCP{}
	a, _ := tr.NewEndpoint()
	defer a.Close()
	b, _ := tr.NewEndpoint()
	defer b.Close()
	huge := make([]byte, maxFrame+1)
	if err := a.Send(b.Element(), huge); err == nil {
		t.Error("oversize frame accepted")
	}
}

func TestFabricSendAfterFabricClose(t *testing.T) {
	f := NewFabric(nil)
	a, _ := f.NewEndpoint()
	b, _ := f.NewEndpoint()
	f.Close()
	if err := a.Send(b.Element(), []byte("x")); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestEndpointCloseIdempotent(t *testing.T) {
	f := NewFabric(nil)
	defer f.Close()
	a, _ := f.NewEndpoint()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	tr := &TCP{}
	e, _ := tr.NewEndpoint()
	e.Close()
	e.Close()
}
