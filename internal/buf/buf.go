// Package buf provides the reference-counted pooled byte buffers the
// zero-copy invocation path is built on. One Buffer carries one wire
// frame from the marshalling caller through the transport to the
// receiving handler without intermediate copies: every layer that needs
// the bytes past its own return takes a reference (Retain) and drops it
// (Release) when done; the last release recycles the buffer.
//
// The package replaces the frame/read-buffer pools that were previously
// copy-pasted between the mem and tcp transports, and it is the backing
// store for wire v4's lazy frames: a decoded frame holds views into a
// Buffer, so the borrow/release discipline here is what makes those
// views safe.
//
// Build with -tags buftrack to enable leak and double-release tracking
// (see track_on.go); the default build compiles the tracking hooks to
// nothing.
package buf

import (
	"sync"
	"sync/atomic"
)

// MaxPooled caps the capacity Release keeps: a buffer grown by a huge
// argument blob must not pin its backing array in the pool forever.
// It matches the transports' historical pooledReadLimit.
const MaxPooled = 64 << 10

// defaultCap is the starting capacity of a fresh pooled buffer; a full
// v4 request frame with small arguments fits without growing.
const defaultCap = 2048

// Buffer is one pooled, reference-counted byte buffer. B is the live
// payload; holders append to and reslice B freely while they are the
// only reference, and must treat it as read-only once the buffer has
// been handed to another holder (a transport send, a parked frame).
type Buffer struct {
	B    []byte
	refs atomic.Int32
}

var pool = sync.Pool{
	New: func() any { return &Buffer{B: make([]byte, 0, defaultCap)} },
}

// Get returns a buffer with one reference, zero length, and non-trivial
// capacity. The caller owns that reference and must Release it.
func Get() *Buffer {
	b := pool.Get().(*Buffer)
	b.B = b.B[:0]
	b.refs.Store(1)
	trackGet(b)
	return b
}

// GetSize returns a buffer with one reference whose B has length n
// (grown as needed). Transports use it for inbound reads.
func GetSize(n int) *Buffer {
	b := pool.Get().(*Buffer)
	if cap(b.B) < n {
		b.B = make([]byte, n)
	} else {
		b.B = b.B[:n]
	}
	b.refs.Store(1)
	trackGet(b)
	return b
}

// Retain adds a reference and returns b, so a handoff reads as
// `q <- b.Retain()`. It must only be called by a holder that already
// owns a reference (the count can never revive from zero).
func (b *Buffer) Retain() *Buffer {
	if b.refs.Add(1) <= 1 {
		panic("buf: Retain on released buffer")
	}
	return b
}

// Release drops one reference; the last drop recycles the buffer. The
// caller must not touch b or b.B afterwards — views into B (wire frame
// fields, arguments) die with the reference that guaranteed them.
func (b *Buffer) Release() {
	n := b.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		trackDoubleRelease(b)
		panic("buf: double release")
	}
	trackPut(b)
	if cap(b.B) > MaxPooled {
		b.B = make([]byte, 0, defaultCap)
	}
	pool.Put(b)
}

// Refs returns the current reference count (for tests and assertions).
func (b *Buffer) Refs() int32 { return b.refs.Load() }
