//go:build !buftrack

package buf

// The default build compiles the lifetime-tracking hooks to nothing;
// the borrow/release contract is then enforced only by the refcount
// panics in Retain/Release. Build with -tags buftrack to record every
// live buffer's acquisition stack (see track_on.go).

func trackGet(*Buffer)           {}
func trackPut(*Buffer)           {}
func trackDoubleRelease(*Buffer) {}

// Tracking reports whether the buftrack build tag is active.
const Tracking = false

// Live returns the number of tracked live buffers; always 0 without
// the buftrack tag.
func Live() int { return 0 }

// LiveStacks returns the acquisition stacks of tracked live buffers;
// always nil without the buftrack tag.
func LiveStacks() []string { return nil }
