package buf

import (
	"sync"
	"testing"
)

func TestGetReleaseCycle(t *testing.T) {
	b := Get()
	if b.Refs() != 1 {
		t.Fatalf("fresh buffer has %d refs, want 1", b.Refs())
	}
	b.B = append(b.B, "hello"...)
	b.Release()
}

func TestGetSize(t *testing.T) {
	b := GetSize(100)
	if len(b.B) != 100 {
		t.Fatalf("GetSize(100) gave len %d", len(b.B))
	}
	b.Release()
	big := GetSize(MaxPooled + 1)
	if len(big.B) != MaxPooled+1 {
		t.Fatalf("GetSize big gave len %d", len(big.B))
	}
	big.Release()
	// An oversized buffer must not come back from the pool oversized.
	n := Get()
	if cap(n.B) > MaxPooled {
		t.Fatalf("pool kept oversized buffer: cap %d", cap(n.B))
	}
	n.Release()
}

func TestRetainKeepsAlive(t *testing.T) {
	b := Get()
	b.B = append(b.B, 1, 2, 3)
	b2 := b.Retain()
	if b2 != b {
		t.Fatal("Retain must return the receiver")
	}
	if b.Refs() != 2 {
		t.Fatalf("refs = %d, want 2", b.Refs())
	}
	b.Release()
	if b.Refs() != 1 {
		t.Fatalf("refs after one release = %d, want 1", b.Refs())
	}
	if string(b.B) != "\x01\x02\x03" {
		t.Fatal("payload lost while a reference was held")
	}
	b.Release()
}

func TestDoubleReleasePanics(t *testing.T) {
	// A separately-allocated buffer (not from the pool) so the panic
	// cannot corrupt pooled state for other tests.
	b := &Buffer{}
	b.refs.Store(1)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b.Release()
}

func TestRetainAfterReleasePanics(t *testing.T) {
	b := &Buffer{}
	b.refs.Store(1)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Retain on dead buffer did not panic")
		}
	}()
	b.Retain()
}

func TestConcurrentRetainRelease(t *testing.T) {
	b := Get()
	const holders = 64
	var wg sync.WaitGroup
	for i := 0; i < holders; i++ {
		b.Retain()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = b.B
			b.Release()
		}()
	}
	wg.Wait()
	if b.Refs() != 1 {
		t.Fatalf("refs = %d after all holders released, want 1", b.Refs())
	}
	b.Release()
}

func TestTrackingDisabledByDefault(t *testing.T) {
	if Tracking {
		t.Skip("buftrack tag active")
	}
	if Live() != 0 || LiveStacks() != nil {
		t.Fatal("tracking stubs must report nothing without the tag")
	}
}

// TestTrackingCountsLiveBuffers exercises the buftrack accounting; it
// only observes counts under the tag (make fuzz-smoke runs the package
// with -tags buftrack).
func TestTrackingCountsLiveBuffers(t *testing.T) {
	if !Tracking {
		t.Skip("needs -tags buftrack")
	}
	before := Live()
	b := Get()
	if Live() != before+1 {
		t.Fatalf("Live = %d, want %d", Live(), before+1)
	}
	if len(LiveStacks()) == 0 {
		t.Fatal("no acquisition stack recorded")
	}
	b.Release()
	if Live() != before {
		t.Fatalf("Live = %d after release, want %d", Live(), before)
	}
}
