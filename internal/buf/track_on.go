//go:build buftrack

package buf

import (
	"runtime"
	"sync"
)

// With the buftrack build tag the package records the acquisition stack
// of every live buffer. A test that drains all traffic and then finds
// Live() > 0 has caught a leaked reference — LiveStacks says who took
// it; a double release additionally reports the victim's acquisition
// stack before the refcount panic fires.

// Tracking reports whether the buftrack build tag is active.
const Tracking = true

var trackMu sync.Mutex
var live = make(map[*Buffer]string)

func trackGet(b *Buffer) {
	var pcs [8]uintptr
	n := runtime.Callers(3, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	stack := ""
	for {
		f, more := frames.Next()
		stack += f.Function + "\n"
		if !more {
			break
		}
	}
	trackMu.Lock()
	live[b] = stack
	trackMu.Unlock()
}

func trackPut(b *Buffer) {
	trackMu.Lock()
	delete(live, b)
	trackMu.Unlock()
}

func trackDoubleRelease(b *Buffer) {
	trackMu.Lock()
	stack, ok := live[b]
	trackMu.Unlock()
	if ok {
		println("buf: double release of buffer acquired at:\n" + stack)
	} else {
		println("buf: double release of already-recycled buffer")
	}
}

// Live returns the number of tracked live buffers.
func Live() int {
	trackMu.Lock()
	defer trackMu.Unlock()
	return len(live)
}

// LiveStacks returns the acquisition stacks of all live buffers.
func LiveStacks() []string {
	trackMu.Lock()
	defer trackMu.Unlock()
	out := make([]string, 0, len(live))
	for _, s := range live {
		out = append(out, s)
	}
	return out
}
