package debughttp

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/oa"
	"repro/internal/obs"
	"repro/internal/sim"
)

func TestMetricsHelpLines(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("rt/calls").Inc()
	reg.Histogram("invoke.latency").Observe(time.Millisecond)
	_, body := get(t, Handler(Options{Registry: reg}), "/metrics")
	for _, want := range []string{
		`# HELP legion_rt_calls legion counter "rt/calls"`,
		"# TYPE legion_rt_calls counter",
		`# HELP legion_invoke_latency legion latency histogram "invoke.latency" (seconds)`,
		"# TYPE legion_invoke_latency histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Every # TYPE line must be preceded by a # HELP line for the same
	// sanitized name.
	lines := strings.Split(body, "\n")
	for i, line := range lines {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(line)[2]
		if i == 0 || !strings.HasPrefix(lines[i-1], "# HELP "+name+" ") {
			t.Errorf("# TYPE for %s not preceded by its # HELP line", name)
		}
	}
}

func TestQueryEndpoint(t *testing.T) {
	plane := obs.NewPlane(obs.Config{Host: "test", Registry: metrics.NewRegistry()})
	plane.AddObjectSource(func() []obs.ObjectView {
		return []obs.ObjectView{
			{LOID: "L256.1", Impl: "demo.counter", Host: "L7.1", Active: true},
			{LOID: "L256.2", Impl: "demo.counter", Host: "L7.2", Active: true},
		}
	})
	h := Handler(Options{Obs: plane})

	if code, body := get(t, h, "/debug/query"); code != 200 || !strings.Contains(body, "objects") {
		t.Errorf("help page: %d %q", code, body)
	}
	code, body := get(t, h, "/debug/query?q=select+loid,+host+from+objects+order+by+loid")
	if code != 200 {
		t.Fatalf("query status = %d: %s", code, body)
	}
	if !strings.Contains(body, "L256.1") || !strings.Contains(body, "L7.2") {
		t.Errorf("query result:\n%s", body)
	}
	code, body = get(t, h, "/debug/query?q=select+loid+from+objects&format=json")
	if code != 200 {
		t.Fatalf("json query status = %d", code)
	}
	var rows []map[string]any
	if err := json.Unmarshal([]byte(body), &rows); err != nil || len(rows) != 2 {
		t.Errorf("json result (%v): %s", err, body)
	}
	if code, body := get(t, h, "/debug/query?q=select+nope+from+objects"); code != 400 ||
		!strings.Contains(body, "query error") {
		t.Errorf("bad query: %d %q", code, body)
	}
	if code, _ := get(t, Handler(Options{}), "/debug/query?q=select+*+from+hosts"); code != 404 {
		t.Errorf("no-plane status = %d, want 404", code)
	}
}

func TestEventsEndpoint(t *testing.T) {
	plane := obs.NewPlane(obs.Config{Host: "test"})
	plane.Record(obs.KindMigrate, "L256.1", "prepared h1 -> h2", 0)
	plane.Record(obs.KindFailover, "L7.1", "host failed", 0)
	code, body := get(t, Handler(Options{Obs: plane}), "/debug/events")
	if code != 200 {
		t.Fatalf("/debug/events status = %d", code)
	}
	for _, want := range []string{"2 flight-recorder events", "migrate", "prepared h1 -> h2", "failover"} {
		if !strings.Contains(body, want) {
			t.Errorf("events body missing %q:\n%s", want, body)
		}
	}
	if code, _ := get(t, Handler(Options{}), "/debug/events"); code != 404 {
		t.Errorf("no-plane status = %d, want 404", code)
	}
}

// TestDebugSurfaceUnderChurn scrapes /debug/placements, /debug/health,
// /debug/query, and /debug/events while live migrations, rebalancer
// rounds, and breaker transitions run underneath — the debug surface
// must stay lock-safe against the machinery it observes (run with
// -race).
func TestDebugSurfaceUnderChurn(t *testing.T) {
	s, err := sim.Build(sim.Config{
		HostsPerJurisdiction: 2,
		ObjectsPerClass:      4,
		LoadReportEvery:      10 * time.Millisecond,
		Obs:                  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tracker := health.NewTracker(health.Config{FailureThreshold: 2, OpenDuration: 5 * time.Millisecond}, s.Reg)
	jur := s.Sys.Jurisdictions[0]
	h := Handler(Options{
		Registry: s.Reg,
		Health:   tracker,
		Obs:      s.Plane,
		Placements: func() []PlacementView {
			v := PlacementView{Jurisdiction: jur.Magistrate.String()}
			for _, hl := range jur.MagistrateImpl().Loads() {
				v.Hosts = append(v.Hosts, PlacementHost{Host: hl.Host.String(), Residents: int(hl.Load.Residents), Age: hl.Age})
			}
			for _, p := range jur.MagistrateImpl().Placements() {
				v.Objects = append(v.Objects, PlacementObject{Object: p.Object.String(), Impl: p.Impl, Host: p.Host.String(), Active: p.Active})
			}
			return []PlacementView{v}
		},
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churn: migrate every object between the two hosts, repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l := s.Flat[i%len(s.Flat)]
			_ = s.MigrateObject(context.Background(), l, 0, i%2)
		}
	}()
	// Rebalancer rounds race the migrations.
	reb, err := s.NewRebalancer(0)
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_, _ = reb.RoundNow(context.Background())
			}
		}
	}()
	// Breaker transitions under the /debug/health scrapes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e := oa.MemElement(uint64(i%3 + 1))
			if i%5 == 0 {
				tracker.ReportSuccess(e, time.Millisecond)
			} else {
				tracker.ReportFailure(e)
			}
		}
	}()

	deadline := time.After(1500 * time.Millisecond)
	paths := []string{
		"/debug/placements",
		"/debug/health",
		"/debug/events",
		"/debug/query?q=select+loid,+host,+active+from+placements",
		"/debug/query?q=select+*+from+hosts",
		"/metrics",
	}
scrape:
	for i := 0; ; i++ {
		select {
		case <-deadline:
			break scrape
		default:
		}
		if code, body := get(t, h, paths[i%len(paths)]); code != 200 {
			t.Errorf("%s = %d: %s", paths[i%len(paths)], code, body)
			break
		}
	}
	close(stop)
	wg.Wait()
}
