package debughttp

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/oa"
	"repro/internal/trace"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestMetricsExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("rt/calls").Add(7)
	reg.Histogram("invoke.latency").Observe(3 * time.Millisecond)
	reg.Histogram("invoke.latency").Observe(900 * time.Millisecond)

	code, body := get(t, Handler(Options{Registry: reg}), "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"# TYPE legion_rt_calls counter",
		"legion_rt_calls 7",
		"# TYPE legion_invoke_latency histogram",
		"legion_invoke_latency_count 2",
		`legion_invoke_latency_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Bucket cumulative counts must be monotonic and end at Count.
	var last uint64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "legion_invoke_latency_bucket") {
			continue
		}
		var v uint64
		if _, err := fmtSscan(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = v
	}
	if last != 2 {
		t.Errorf("final bucket = %d, want 2", last)
	}
}

// fmtSscan pulls the trailing integer off a "name{...} N" line.
func fmtSscan(line string, v *uint64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var err error
	*v, err = parseUint(line[i+1:])
	return 1, err
}

func parseUint(s string) (uint64, error) {
	var v uint64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, &parseErr{s}
		}
		v = v*10 + uint64(r-'0')
	}
	return v, nil
}

type parseErr struct{ s string }

func (e *parseErr) Error() string { return "not a uint: " + e.s }

func TestTracesEndpoint(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 1})
	root := tr.Root("call", "Work", "client-0")
	child := tr.Child(root.Context(), "serve", "Work", "host-1")
	child.Event("cache", "hit")
	child.Finish("OK")
	root.Finish("OK")
	id := root.Context().TraceID

	h := Handler(Options{Tracer: tr})

	code, body := get(t, h, "/debug/traces")
	if code != 200 || !strings.Contains(body, "1 recent traces") {
		t.Fatalf("trace list: %d %q", code, body)
	}

	code, body = get(t, h, "/debug/traces?id="+hex(id))
	if code != 200 {
		t.Fatalf("timeline status = %d: %s", code, body)
	}
	for _, want := range []string{"client-0", "host-1", "cache: hit"} {
		if !strings.Contains(body, want) {
			t.Errorf("timeline missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, h, "/debug/traces?id="+hex(id)+"&format=chrome")
	if code != 200 {
		t.Fatalf("chrome export status = %d", code)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("chrome export empty")
	}

	if code, _ := get(t, h, "/debug/traces?id=ffffffffffffffff"); code != 404 {
		t.Errorf("unknown trace id status = %d, want 404", code)
	}
	if code, _ := get(t, h, "/debug/traces?id=zzz"); code != 400 {
		t.Errorf("bad trace id status = %d, want 400", code)
	}
	if code, _ := get(t, Handler(Options{}), "/debug/traces"); code != 404 {
		t.Errorf("no-tracer status = %d, want 404", code)
	}
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = digits[v&0xf]
		v >>= 4
	}
	return string(out)
}

func TestHealthEndpoint(t *testing.T) {
	tr := health.NewTracker(health.Config{FailureThreshold: 1, OpenDuration: time.Minute}, nil)
	tr.ReportSuccess(oa.MemElement(1), 2*time.Millisecond)
	tr.ReportFailure(oa.MemElement(2))

	code, body := get(t, Handler(Options{Health: tr}), "/debug/health")
	if code != 200 {
		t.Fatalf("/debug/health status = %d", code)
	}
	if !strings.Contains(body, "2 tracked endpoints") ||
		!strings.Contains(body, "open") || !strings.Contains(body, "closed") {
		t.Errorf("health body:\n%s", body)
	}
	// Sickest-first ordering: the open breaker line precedes the closed.
	if strings.Index(body, "open") > strings.Index(body, "closed") {
		t.Errorf("open breaker not listed first:\n%s", body)
	}
}

func TestPlacementsEndpoint(t *testing.T) {
	code, body := get(t, Handler(Options{}), "/debug/placements")
	if code != 200 || !strings.Contains(body, "no placement source") {
		t.Errorf("nil source: %d %q", code, body)
	}
	views := func() []PlacementView {
		return []PlacementView{{
			Jurisdiction: "L6.1",
			Hosts: []PlacementHost{
				{Host: "L7.1", Residents: 3, MailboxDepth: 2, DispatchRate: 41, Score: 3.7, Age: 120 * time.Millisecond},
				{Host: "L7.2", Residents: 0, Age: -1},
			},
			Objects: []PlacementObject{
				{Object: "L256.1", Impl: "demo.counter", Host: "L7.1", Active: true},
				{Object: "L256.2", Impl: "demo.counter", Active: false},
			},
		}}
	}
	code, body = get(t, Handler(Options{Placements: views}), "/debug/placements")
	if code != 200 {
		t.Fatalf("/debug/placements status = %d", code)
	}
	for _, want := range []string{"jurisdiction L6.1", "L7.1", "never", "ago", "demo.counter", "active", "inert"} {
		if !strings.Contains(body, want) {
			t.Errorf("placements body missing %q:\n%s", want, body)
		}
	}
}

func TestPprofAndVars(t *testing.T) {
	h := Handler(Options{})
	if code, body := get(t, h, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, body := get(t, h, "/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d %q", code, body[:min(len(body), 80)])
	}
}

func TestServeBindsAndStops(t *testing.T) {
	addr, stop, err := Serve("127.0.0.1:0", Options{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("live /metrics status = %d", resp.StatusCode)
	}
}
