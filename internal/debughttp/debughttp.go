// Package debughttp is the live observability surface: an opt-in HTTP
// listener exposing the node's metrics registry in Prometheus text
// format, recent invocation traces (human timeline or Chrome
// trace-event JSON), circuit-breaker state, and the stdlib pprof and
// expvar handlers. It is wired into legiond behind -debug-addr and is
// off by default — the invocation fast path never pays for it.
//
// Everything here reads snapshots (Registry.Counters/Histograms,
// Tracer.Spans, Tracker.Snapshot): a scrape never takes a lock the
// invocation path contends on.
package debughttp

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Options selects what the handler can show. Nil fields render as
// empty sections rather than errors, so a partially wired node still
// serves what it has.
type Options struct {
	// Registry supplies /metrics (counters + histograms).
	Registry *metrics.Registry
	// Tracer supplies /debug/traces.
	Tracer *trace.Tracer
	// Health supplies /debug/health (breaker states, EWMA latency).
	Health *health.Tracker
	// Placements supplies /debug/placements. The callback is invoked
	// per scrape; it should snapshot the Magistrates' placement and
	// load tables. Nil disables the endpoint (host-only processes have
	// no placement authority to show).
	Placements func() []PlacementView
	// Obs supplies /debug/query (LQL over the observability plane) and
	// /debug/events (the merged flight-recorder timeline). Nil disables
	// both endpoints.
	Obs *obs.Plane
}

// PlacementHost is one host row of a jurisdiction's placement view:
// the load vector the Magistrate last heard, plus its derived score.
type PlacementHost struct {
	Host         string
	Residents    int
	MailboxDepth int
	DispatchRate float64 // dispatches/sec
	CkptDirty    int
	Score        float64
	// Age is the time since the host's last load report; negative when
	// the host has never reported (placement falls back to residency
	// counts alone).
	Age time.Duration
}

// PlacementObject is one object row: where the Magistrate's table
// places it right now.
type PlacementObject struct {
	Object string
	Impl   string
	Host   string
	Active bool
}

// PlacementView is one jurisdiction's placement table.
type PlacementView struct {
	Jurisdiction string
	Hosts        []PlacementHost
	Objects      []PlacementObject
}

// Handler builds the debug mux:
//
//	/               — index of everything below
//	/metrics        — Prometheus text exposition
//	/debug/traces   — recent trace IDs; ?id=<hex> for one trace's hop
//	                  timeline, &format=chrome for trace-event JSON
//	/debug/health   — per-endpoint breaker state
//	/debug/placements — per-jurisdiction host loads and object placements
//	/debug/query    — LQL over the observability plane (?q=<lql>,
//	                  &format=json for machine output)
//	/debug/events   — merged cluster flight-recorder timeline
//	/debug/pprof/   — stdlib profiles
//	/debug/vars     — expvar JSON
func Handler(opts Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "legion debug surface\n\n"+
			"/metrics        Prometheus text metrics\n"+
			"/debug/traces   recent traces (?id=<hex>&format=chrome)\n"+
			"/debug/health   circuit-breaker state per endpoint\n"+
			"/debug/placements  host load vectors and object placements\n"+
			"/debug/query    LQL query (?q=select+*+from+hosts&format=json)\n"+
			"/debug/events   flight-recorder event timeline\n"+
			"/debug/pprof/   runtime profiles\n"+
			"/debug/vars     expvar JSON\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, opts.Registry)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		serveTraces(w, r, opts.Tracer)
	})
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		serveHealth(w, opts.Health)
	})
	mux.HandleFunc("/debug/placements", func(w http.ResponseWriter, r *http.Request) {
		servePlacements(w, opts.Placements)
	})
	mux.HandleFunc("/debug/query", func(w http.ResponseWriter, r *http.Request) {
		serveQuery(w, r, opts.Obs)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(w, opts.Obs)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Serve listens on addr and serves Handler(opts) until the listener
// fails. It returns the bound address (useful with a ":0" addr) and a
// stop function. Serving starts before Serve returns.
func Serve(addr string, opts Options) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(opts)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// promName sanitizes a registry name ("rt/calls", "invoke.latency")
// into the Prometheus name space: [a-zA-Z0-9_:], leading digit
// prefixed.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return "legion_" + b.String()
}

func writeMetrics(w http.ResponseWriter, reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for _, c := range reg.Counters() {
		n := promName(c.Name)
		fmt.Fprintf(w, "# HELP %s legion counter %q\n", n, c.Name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, h := range reg.Histograms() {
		n := promName(h.Name)
		fmt.Fprintf(w, "# HELP %s legion latency histogram %q (seconds)\n", n, h.Name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum uint64
		for i, cnt := range h.Stats.Buckets {
			cum += cnt
			if cnt == 0 && i != len(h.Stats.Buckets)-1 {
				continue // keep the exposition short; cumulative stays right
			}
			bound := metrics.BucketBound(i)
			le := "+Inf"
			if bound >= 0 {
				le = strconv.FormatFloat(bound.Seconds(), 'g', -1, 64)
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum)
		}
		fmt.Fprintf(w, "%s_sum %g\n", n, h.Stats.Sum.Seconds())
		fmt.Fprintf(w, "%s_count %d\n", n, h.Stats.Count)
	}
}

func serveTraces(w http.ResponseWriter, r *http.Request, tr *trace.Tracer) {
	if tr == nil {
		http.Error(w, "tracing disabled (no tracer installed)", http.StatusNotFound)
		return
	}
	idStr := r.URL.Query().Get("id")
	if idStr == "" {
		ids := tr.TraceIDs()
		fmt.Fprintf(w, "%d recent traces (newest first); ?id=<hex> for a timeline\n\n", len(ids))
		for _, id := range ids {
			spans := tr.Trace(id)
			root := "?"
			for _, s := range spans {
				if s.Context().ParentSpanID == 0 {
					root = s.Name
					break
				}
			}
			fmt.Fprintf(w, "%016x  %2d spans  %s\n", id, len(spans), root)
		}
		return
	}
	id, err := strconv.ParseUint(strings.TrimPrefix(idStr, "0x"), 16, 64)
	if err != nil {
		http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
		return
	}
	spans := tr.Trace(id)
	if len(spans) == 0 {
		http.Error(w, "no such trace (evicted or never sampled)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		out, err := trace.ChromeJSON(spans)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(out)
		return
	}
	fmt.Fprintln(w, trace.Timeline(spans))
}

func servePlacements(w http.ResponseWriter, fn func() []PlacementView) {
	if fn == nil {
		fmt.Fprintln(w, "no placement source installed (host-only process?)")
		return
	}
	views := fn()
	if len(views) == 0 {
		fmt.Fprintln(w, "no jurisdictions")
		return
	}
	for vi, v := range views {
		if vi > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "jurisdiction %s — %d hosts, %d objects\n\n",
			v.Jurisdiction, len(v.Hosts), len(v.Objects))
		fmt.Fprintf(w, "  %-24s %9s %7s %9s %6s %7s %8s\n",
			"host", "residents", "depth", "disp/s", "dirty", "score", "report")
		for _, h := range v.Hosts {
			age := "never"
			if h.Age >= 0 {
				age = h.Age.Truncate(time.Millisecond).String() + " ago"
			}
			fmt.Fprintf(w, "  %-24s %9d %7d %9.1f %6d %7.2f %8s\n",
				h.Host, h.Residents, h.MailboxDepth, h.DispatchRate,
				h.CkptDirty, h.Score, age)
		}
		fmt.Fprintln(w)
		for _, o := range v.Objects {
			state := "inert"
			if o.Active {
				state = "active"
			}
			fmt.Fprintf(w, "  %-24s %-16s %-7s %s\n", o.Object, o.Impl, state, o.Host)
		}
	}
}

func serveQuery(w http.ResponseWriter, r *http.Request, p *obs.Plane) {
	if p == nil {
		http.Error(w, "no observability plane installed", http.StatusNotFound)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		fmt.Fprintf(w, "LQL query endpoint; pass ?q=<query>\n\n"+
			"tables: %s\n\n"+
			"example: /debug/query?q=select loid, host, p999 from objects order by p999 desc limit 5\n",
			strings.Join(p.Tables(), " "))
		return
	}
	t, err := p.Query(q)
	if err != nil {
		http.Error(w, "query error: "+err.Error(), http.StatusBadRequest)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(t.JSON())
		return
	}
	fmt.Fprint(w, t.Format())
}

func serveEvents(w http.ResponseWriter, p *obs.Plane) {
	if p == nil {
		http.Error(w, "no observability plane installed", http.StatusNotFound)
		return
	}
	evs := p.Events()
	fmt.Fprintf(w, "%d flight-recorder events (oldest first)\n\n", len(evs))
	for _, e := range evs {
		fmt.Fprintln(w, e.String())
	}
}

func serveHealth(w http.ResponseWriter, tr *health.Tracker) {
	if tr == nil {
		fmt.Fprintln(w, "no health tracker installed")
		return
	}
	snap := tr.Snapshot()
	sort.SliceStable(snap, func(i, j int) bool {
		return snap[i].State > snap[j].State // sickest first
	})
	fmt.Fprintf(w, "%d tracked endpoints\n\n", len(snap))
	for _, eh := range snap {
		fmt.Fprintf(w, "%-24s %-9s consec=%d ewma=%s\n",
			eh.Element, eh.State, eh.Consecutive, eh.EWMA)
	}
}
