package idl

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads IDL source text and returns the interfaces it declares.
// The grammar, with '//' and '#' line comments:
//
//	file       := interface*
//	interface  := "interface" IDENT "{" method* "}"
//	method     := ["oneway"] IDENT "(" params? ")" [ "returns" "(" params ")" ] ";"
//	params     := param ("," param)*
//	param      := IDENT TYPE
func Parse(src string) ([]*Interface, error) {
	p := &parser{toks: lex(src)}
	var out []*Interface
	for !p.eof() {
		in, err := p.parseInterface()
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("idl: no interfaces in source")
	}
	return out, nil
}

// ParseOne parses source that must contain exactly one interface.
func ParseOne(src string) (*Interface, error) {
	ins, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(ins) != 1 {
		return nil, fmt.Errorf("idl: expected exactly one interface, found %d", len(ins))
	}
	return ins[0], nil
}

type token struct {
	text string
	line int
}

func lex(src string) []token {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/', c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{' || c == '}' || c == '(' || c == ')' || c == ',' || c == ';':
			toks = append(toks, token{string(c), line})
			i++
		case isIdentByte(c):
			j := i
			for j < len(src) && isIdentByte(src[j]) {
				j++
			}
			toks = append(toks, token{src[i:j], line})
			i = j
		default:
			toks = append(toks, token{string(c), line})
			i++
		}
	}
	return toks
}

func isIdentByte(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() token {
	if p.eof() {
		return token{"", -1}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(text string) (token, error) {
	t := p.next()
	if t.text != text {
		return t, fmt.Errorf("idl: line %d: expected %q, found %q", t.line, text, t.text)
	}
	return t, nil
}

func (p *parser) ident(what string) (token, error) {
	t := p.next()
	if t.text == "" || !isIdentStart(t.text) {
		return t, fmt.Errorf("idl: line %d: expected %s, found %q", t.line, what, t.text)
	}
	return t, nil
}

func isIdentStart(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c == '_' || unicode.IsLetter(rune(c))
}

func (p *parser) parseInterface() (*Interface, error) {
	if _, err := p.expect("interface"); err != nil {
		return nil, err
	}
	name, err := p.ident("interface name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	in := &Interface{Name: name.text, methods: map[string]MethodSig{}}
	for {
		if p.peek().text == "}" {
			p.next()
			return in, nil
		}
		if p.eof() {
			return nil, fmt.Errorf("idl: unexpected end of source in interface %s", in.Name)
		}
		sig, err := p.parseMethod()
		if err != nil {
			return nil, err
		}
		if err := sig.Validate(); err != nil {
			return nil, err
		}
		if err := in.add(sig, ConflictError); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseMethod() (MethodSig, error) {
	var sig MethodSig
	t, err := p.ident("method name")
	if err != nil {
		return sig, err
	}
	if t.text == "oneway" {
		sig.OneWay = true
		t, err = p.ident("method name")
		if err != nil {
			return sig, err
		}
	}
	sig.Name = t.text
	if _, err := p.expect("("); err != nil {
		return sig, err
	}
	sig.Params, err = p.parseParams()
	if err != nil {
		return sig, err
	}
	if p.peek().text == "returns" {
		p.next()
		if _, err := p.expect("("); err != nil {
			return sig, err
		}
		sig.Returns, err = p.parseParams()
		if err != nil {
			return sig, err
		}
		if len(sig.Returns) == 0 {
			return sig, fmt.Errorf("idl: line %d: empty returns clause on %s", p.peek().line, sig.Name)
		}
	}
	if _, err := p.expect(";"); err != nil {
		return sig, err
	}
	return sig, nil
}

// parseParams consumes params up to and including the closing ')'.
func (p *parser) parseParams() ([]Param, error) {
	var ps []Param
	if p.peek().text == ")" {
		p.next()
		return ps, nil
	}
	for {
		name, err := p.ident("parameter name")
		if err != nil {
			return nil, err
		}
		ty, err := p.ident("parameter type")
		if err != nil {
			return nil, err
		}
		if !ValidType(Type(ty.text)) {
			return nil, fmt.Errorf("idl: line %d: unknown type %q (valid: %s)", ty.line, ty.text, strings.Join(typeNames(), ", "))
		}
		ps = append(ps, Param{Name: name.text, Type: Type(ty.text)})
		switch t := p.next(); t.text {
		case ",":
		case ")":
			return ps, nil
		default:
			return nil, fmt.Errorf("idl: line %d: expected ',' or ')', found %q", t.line, t.text)
		}
	}
}

func typeNames() []string {
	return []string{
		string(TInt64), string(TUint64), string(TString), string(TBool),
		string(TBytes), string(TLOID), string(TAddress), string(TBinding), string(TTime),
	}
}
