package idl

import (
	"strings"
	"testing"
)

func sig(name string, oneWay bool, params, returns []Param) MethodSig {
	return MethodSig{Name: name, OneWay: oneWay, Params: params, Returns: returns}
}

func TestMethodSigString(t *testing.T) {
	s := sig("GetBinding", false,
		[]Param{{"target", TLOID}},
		[]Param{{"b", TBinding}})
	want := "GetBinding(target loid) returns (b binding)"
	if s.String() != want {
		t.Errorf("String = %q, want %q", s.String(), want)
	}
	ow := sig("Notify", true, nil, nil)
	if ow.String() != "oneway Notify()" {
		t.Errorf("String = %q", ow.String())
	}
}

func TestMethodSigValidate(t *testing.T) {
	good := sig("M", false, []Param{{"a", TInt64}}, nil)
	if err := good.Validate(); err != nil {
		t.Errorf("valid sig rejected: %v", err)
	}
	bad := []MethodSig{
		sig("", false, nil, nil),
		sig("M", true, nil, []Param{{"r", TInt64}}),
		sig("M", false, []Param{{"", TInt64}}, nil),
		sig("M", false, []Param{{"a", Type("float128")}}, nil),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad sig %d accepted: %v", i, s)
		}
	}
}

func TestInterfaceAddLookup(t *testing.T) {
	in := NewInterface("X")
	if err := in.Add(sig("A", false, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if !in.Has("A") || in.Has("B") {
		t.Error("Has wrong")
	}
	got, ok := in.Lookup("A")
	if !ok || got.Name != "A" {
		t.Error("Lookup failed")
	}
	if err := in.Add(sig("A", false, []Param{{"x", TBool}}, nil)); err == nil {
		t.Error("conflicting Add accepted")
	}
	if err := in.Add(sig("A", false, nil, nil)); err != nil {
		t.Errorf("identical re-Add rejected: %v", err)
	}
}

func TestNilInterfaceLookup(t *testing.T) {
	var in *Interface
	if _, ok := in.Lookup("A"); ok {
		t.Error("nil interface Lookup succeeded")
	}
	if in.Len() != 0 || in.Methods() != nil {
		t.Error("nil interface not empty")
	}
}

func TestMergePolicies(t *testing.T) {
	base := func() *Interface {
		return NewInterface("C", sig("M", false, []Param{{"a", TInt64}}, nil))
	}
	other := NewInterface("B",
		sig("M", false, []Param{{"b", TString}}, nil),
		sig("N", false, nil, nil))

	in := base()
	if err := in.Merge(other, ConflictError); err == nil {
		t.Error("ConflictError merge accepted conflict")
	}

	in = base()
	if err := in.Merge(other, ConflictKeep); err != nil {
		t.Fatal(err)
	}
	m, _ := in.Lookup("M")
	if m.Params[0].Type != TInt64 {
		t.Error("ConflictKeep did not keep existing")
	}
	if !in.Has("N") {
		t.Error("merge dropped non-conflicting method")
	}

	in = base()
	if err := in.Merge(other, ConflictOverride); err != nil {
		t.Fatal(err)
	}
	m, _ = in.Lookup("M")
	if m.Params[0].Type != TString {
		t.Error("ConflictOverride did not override")
	}
}

func TestMergeNilIsNoop(t *testing.T) {
	in := NewInterface("X", sig("A", false, nil, nil))
	if err := in.Merge(nil, ConflictError); err != nil {
		t.Fatal(err)
	}
	if in.Len() != 1 {
		t.Error("nil merge changed interface")
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := NewInterface("X", sig("A", false, nil, nil))
	c := in.Clone("Y")
	if c.Name != "Y" {
		t.Errorf("Clone name = %q", c.Name)
	}
	c.Add(sig("B", false, nil, nil))
	if in.Has("B") {
		t.Error("Clone shares state with original")
	}
	same := in.Clone("")
	if same.Name != "X" {
		t.Errorf("Clone('') name = %q", same.Name)
	}
}

func TestEqual(t *testing.T) {
	a := NewInterface("A", sig("M", false, nil, nil), sig("N", false, nil, nil))
	b := NewInterface("B", sig("N", false, nil, nil), sig("M", false, nil, nil))
	if !a.Equal(b) {
		t.Error("order-sensitive Equal")
	}
	c := NewInterface("C", sig("M", false, nil, nil))
	if a.Equal(c) {
		t.Error("unequal interfaces compared equal")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	in := NewInterface("FileObject",
		sig("read", false, []Param{{"offset", TInt64}, {"n", TInt64}}, []Param{{"data", TBytes}}),
		sig("close", true, nil, nil),
	)
	got, rest, err := Unmarshal(in.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
	if got.Name != "FileObject" || !got.Equal(in) {
		t.Errorf("round trip: %s", got.Format())
	}
	cl, _ := got.Lookup("close")
	if !cl.OneWay {
		t.Error("OneWay flag lost")
	}
}

func TestUnmarshalTruncation(t *testing.T) {
	in := NewInterface("X", sig("M", false, []Param{{"a", TInt64}}, nil))
	buf := in.Marshal(nil)
	for n := 0; n < len(buf); n += 3 {
		if _, _, err := Unmarshal(buf[:n]); err == nil {
			t.Errorf("prefix of %d bytes accepted", n)
		}
	}
}

func TestFormatSortsMethods(t *testing.T) {
	in := NewInterface("Z", sig("b", false, nil, nil), sig("a", false, nil, nil))
	f := in.Format()
	if strings.Index(f, "a()") > strings.Index(f, "b()") {
		t.Errorf("Format not sorted:\n%s", f)
	}
	if !strings.HasPrefix(f, "interface Z {") {
		t.Errorf("Format = %q", f)
	}
}

func TestParseBasic(t *testing.T) {
	src := `
// A file object.
interface FileObject {
	read(offset int64, n int64) returns (data bytes);
	write(offset int64, data bytes) returns (n int64);
	oneway close();
}
`
	in, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	if in.Name != "FileObject" || in.Len() != 3 {
		t.Fatalf("parsed %s with %d methods", in.Name, in.Len())
	}
	r, _ := in.Lookup("read")
	if len(r.Params) != 2 || r.Params[1].Name != "n" || r.Returns[0].Type != TBytes {
		t.Errorf("read sig = %v", r)
	}
	c, _ := in.Lookup("close")
	if !c.OneWay {
		t.Error("oneway lost")
	}
}

func TestParseMultipleInterfaces(t *testing.T) {
	src := `
interface A { m(); }
# hash comment
interface B { n(x loid) returns (b binding); }
`
	ins, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 || ins[0].Name != "A" || ins[1].Name != "B" {
		t.Fatalf("parsed %d interfaces", len(ins))
	}
}

func TestParseRoundTripThroughFormat(t *testing.T) {
	in := NewInterface("RT",
		sig("a", false, []Param{{"x", TString}}, []Param{{"y", TUint64}}),
		sig("b", true, []Param{{"z", TAddress}}, nil),
	)
	back, err := ParseOne(in.Format())
	if err != nil {
		t.Fatalf("Format not parseable: %v\n%s", err, in.Format())
	}
	if !back.Equal(in) {
		t.Errorf("format/parse round trip lost methods:\n%s\nvs\n%s", in.Format(), back.Format())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"interface {}",
		"interface X { m() }",           // missing semicolon
		"interface X { m(a float32); }", // bad type
		"interface X { m(a); }",         // missing type
		"interface X { m(); m(x bool); }",
		"interface X { oneway m() returns (x bool); }",
		"interface X { m(a int64,); }",
		"interface X",
		"iface X {}",
		"interface X { m(a int64 b); }",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseEmptyParens(t *testing.T) {
	in, err := ParseOne("interface X { m(); }")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := in.Lookup("m")
	if len(m.Params) != 0 || len(m.Returns) != 0 {
		t.Errorf("m = %v", m)
	}
}
