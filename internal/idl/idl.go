// Package idl implements Legion interface descriptions (§2): the
// complete set of method signatures that describes an object's
// interface, inherited from its class. Interfaces are first-class,
// mergeable values — the run-time multiple inheritance of §2.1
// (InheritFrom) is implemented as interface merging — and have a
// textual form in a small Interface Description Language, standing in
// for the paper's CORBA IDL / MPL support.
package idl

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Type enumerates the wire types a parameter may have; they correspond
// one-to-one to the codecs in internal/wire.
type Type string

const (
	TInt64   Type = "int64"
	TUint64  Type = "uint64"
	TString  Type = "string"
	TBool    Type = "bool"
	TBytes   Type = "bytes"
	TLOID    Type = "loid"
	TAddress Type = "address"
	TBinding Type = "binding"
	TTime    Type = "time"
)

var validTypes = map[Type]bool{
	TInt64: true, TUint64: true, TString: true, TBool: true, TBytes: true,
	TLOID: true, TAddress: true, TBinding: true, TTime: true,
}

// ValidType reports whether t is a known parameter type.
func ValidType(t Type) bool { return validTypes[t] }

// Param is one named, typed parameter or result.
type Param struct {
	Name string
	Type Type
}

// MethodSig is the signature of one member function: its name,
// parameters, and results.
type MethodSig struct {
	Name    string
	Params  []Param
	Returns []Param
	// OneWay marks methods that never produce a reply.
	OneWay bool
}

// Equal reports whether two signatures are identical.
func (m MethodSig) Equal(o MethodSig) bool {
	if m.Name != o.Name || m.OneWay != o.OneWay ||
		len(m.Params) != len(o.Params) || len(m.Returns) != len(o.Returns) {
		return false
	}
	for i := range m.Params {
		if m.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range m.Returns {
		if m.Returns[i] != o.Returns[i] {
			return false
		}
	}
	return true
}

// String renders the signature in IDL syntax.
func (m MethodSig) String() string {
	var sb strings.Builder
	if m.OneWay {
		sb.WriteString("oneway ")
	}
	sb.WriteString(m.Name)
	sb.WriteByte('(')
	for i, p := range m.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", p.Name, p.Type)
	}
	sb.WriteByte(')')
	if len(m.Returns) > 0 {
		sb.WriteString(" returns (")
		for i, p := range m.Returns {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s %s", p.Name, p.Type)
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// Validate checks that the signature is well formed.
func (m MethodSig) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("idl: method with empty name")
	}
	if m.OneWay && len(m.Returns) > 0 {
		return fmt.Errorf("idl: oneway method %s declares results", m.Name)
	}
	for _, p := range append(append([]Param{}, m.Params...), m.Returns...) {
		if p.Name == "" {
			return fmt.Errorf("idl: method %s has unnamed parameter", m.Name)
		}
		if !ValidType(p.Type) {
			return fmt.Errorf("idl: method %s parameter %s has unknown type %q", m.Name, p.Name, p.Type)
		}
	}
	return nil
}

// Interface is a named set of method signatures. The zero value is an
// empty, unnamed interface.
type Interface struct {
	Name    string
	methods map[string]MethodSig
	order   []string // insertion order, for stable formatting
}

// NewInterface builds an interface from signatures; it panics on a
// malformed or duplicate signature, since interface literals are
// programmer-authored constants.
func NewInterface(name string, sigs ...MethodSig) *Interface {
	in := &Interface{Name: name, methods: map[string]MethodSig{}}
	for _, s := range sigs {
		if err := s.Validate(); err != nil {
			panic(err)
		}
		if err := in.add(s, ConflictError); err != nil {
			panic(err)
		}
	}
	return in
}

// ConflictPolicy governs what Merge does when both interfaces define a
// method of the same name with different signatures.
type ConflictPolicy int

const (
	// ConflictError rejects the merge.
	ConflictError ConflictPolicy = iota
	// ConflictKeep keeps the existing signature (first base wins —
	// C++-like MI resolution order).
	ConflictKeep
	// ConflictOverride takes the incoming signature (explicit
	// re-inheritance, §2.1.3: classes may "re-inherit" implementations
	// from other classes).
	ConflictOverride
)

func (in *Interface) ensure() {
	if in.methods == nil {
		in.methods = map[string]MethodSig{}
	}
}

func (in *Interface) add(s MethodSig, policy ConflictPolicy) error {
	in.ensure()
	if old, ok := in.methods[s.Name]; ok {
		if old.Equal(s) {
			return nil
		}
		switch policy {
		case ConflictKeep:
			return nil
		case ConflictOverride:
			in.methods[s.Name] = s
			return nil
		default:
			return fmt.Errorf("idl: conflicting signatures for %s: %q vs %q", s.Name, old, s)
		}
	}
	in.methods[s.Name] = s
	in.order = append(in.order, s.Name)
	return nil
}

// Add inserts one validated signature, erroring on conflict.
func (in *Interface) Add(s MethodSig) error {
	if err := s.Validate(); err != nil {
		return err
	}
	return in.add(s, ConflictError)
}

// Lookup finds a method by name.
func (in *Interface) Lookup(name string) (MethodSig, bool) {
	if in == nil || in.methods == nil {
		return MethodSig{}, false
	}
	s, ok := in.methods[name]
	return s, ok
}

// Has reports whether the interface exports the named method.
func (in *Interface) Has(name string) bool {
	_, ok := in.Lookup(name)
	return ok
}

// Methods returns the signatures in insertion order.
func (in *Interface) Methods() []MethodSig {
	if in == nil {
		return nil
	}
	out := make([]MethodSig, 0, len(in.order))
	for _, name := range in.order {
		out = append(out, in.methods[name])
	}
	return out
}

// Len returns the number of methods.
func (in *Interface) Len() int {
	if in == nil {
		return 0
	}
	return len(in.order)
}

// Clone returns a deep copy, optionally renamed (empty keeps the name).
func (in *Interface) Clone(newName string) *Interface {
	out := &Interface{Name: in.Name, methods: map[string]MethodSig{}}
	if newName != "" {
		out.Name = newName
	}
	for _, name := range in.order {
		out.methods[name] = in.methods[name]
		out.order = append(out.order, name)
	}
	return out
}

// Merge adds every method of other to in under the given conflict
// policy. This is the mechanism behind InheritFrom (§2.1): "B's member
// functions [are] added to C's interface."
func (in *Interface) Merge(other *Interface, policy ConflictPolicy) error {
	if other == nil {
		return nil
	}
	for _, s := range other.Methods() {
		if err := in.add(s, policy); err != nil {
			return err
		}
	}
	return nil
}

// Equal reports whether two interfaces export exactly the same method
// set (names and signatures; declaration order and interface name are
// not significant).
func (in *Interface) Equal(other *Interface) bool {
	if in.Len() != other.Len() {
		return false
	}
	for _, s := range in.Methods() {
		o, ok := other.Lookup(s.Name)
		if !ok || !o.Equal(s) {
			return false
		}
	}
	return true
}

// Format renders the interface in canonical IDL text, methods sorted by
// name for reproducibility.
func (in *Interface) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "interface %s {\n", in.Name)
	sigs := in.Methods()
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].Name < sigs[j].Name })
	for _, s := range sigs {
		fmt.Fprintf(&sb, "\t%s;\n", s)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// Marshal appends a binary encoding of the interface to dst, for
// GetInterface() replies.
func (in *Interface) Marshal(dst []byte) []byte {
	dst = appendStr(dst, in.Name)
	dst = binary.BigEndian.AppendUint32(dst, uint32(in.Len()))
	for _, s := range in.Methods() {
		dst = appendStr(dst, s.Name)
		if s.OneWay {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendParams(dst, s.Params)
		dst = appendParams(dst, s.Returns)
	}
	return dst
}

// Unmarshal decodes an interface from the front of src, returning the
// remainder.
func Unmarshal(src []byte) (*Interface, []byte, error) {
	name, src, err := takeStr(src)
	if err != nil {
		return nil, src, fmt.Errorf("idl: name: %w", err)
	}
	if len(src) < 4 {
		return nil, src, fmt.Errorf("idl: short method count")
	}
	n := binary.BigEndian.Uint32(src[:4])
	src = src[4:]
	if n > 1<<16 {
		return nil, src, fmt.Errorf("idl: method count %d exceeds limit", n)
	}
	in := &Interface{Name: name, methods: map[string]MethodSig{}}
	for i := uint32(0); i < n; i++ {
		var s MethodSig
		s.Name, src, err = takeStr(src)
		if err != nil {
			return nil, src, fmt.Errorf("idl: method name: %w", err)
		}
		if len(src) < 1 {
			return nil, src, fmt.Errorf("idl: short oneway flag")
		}
		s.OneWay = src[0] == 1
		src = src[1:]
		s.Params, src, err = takeParams(src)
		if err != nil {
			return nil, src, fmt.Errorf("idl: params: %w", err)
		}
		s.Returns, src, err = takeParams(src)
		if err != nil {
			return nil, src, fmt.Errorf("idl: returns: %w", err)
		}
		if err := in.add(s, ConflictError); err != nil {
			return nil, src, err
		}
	}
	return in, src, nil
}

func appendParams(dst []byte, ps []Param) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ps)))
	for _, p := range ps {
		dst = appendStr(dst, p.Name)
		dst = appendStr(dst, string(p.Type))
	}
	return dst
}

func takeParams(src []byte) ([]Param, []byte, error) {
	if len(src) < 4 {
		return nil, src, fmt.Errorf("short param count")
	}
	n := binary.BigEndian.Uint32(src[:4])
	src = src[4:]
	if n > 1<<12 {
		return nil, src, fmt.Errorf("param count %d exceeds limit", n)
	}
	var ps []Param
	for i := uint32(0); i < n; i++ {
		var p Param
		var err error
		p.Name, src, err = takeStr(src)
		if err != nil {
			return nil, src, err
		}
		var ty string
		ty, src, err = takeStr(src)
		if err != nil {
			return nil, src, err
		}
		p.Type = Type(ty)
		ps = append(ps, p)
	}
	return ps, src, nil
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func takeStr(src []byte) (string, []byte, error) {
	if len(src) < 4 {
		return "", src, fmt.Errorf("short string length")
	}
	n := binary.BigEndian.Uint32(src[:4])
	src = src[4:]
	if n > 1<<20 {
		return "", src, fmt.Errorf("string length %d exceeds limit", n)
	}
	if uint32(len(src)) < n {
		return "", src, fmt.Errorf("short string body")
	}
	return string(src[:n]), src[n:], nil
}
