package idl

import (
	"math/rand"
	"strings"
	"testing"
)

// TestUnmarshalNeverPanics fuzzes the binary interface decoder
// (GetInterface replies cross the network).
func TestUnmarshalNeverPanics(t *testing.T) {
	valid := NewInterface("Fuzzed",
		MethodSig{Name: "A", Params: []Param{{Name: "x", Type: TInt64}}},
		MethodSig{Name: "B", OneWay: true},
		MethodSig{Name: "C", Returns: []Param{{Name: "r", Type: TBinding}}},
	).Marshal(nil)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 6000; i++ {
		var buf []byte
		if i%2 == 0 {
			buf = make([]byte, rng.Intn(len(valid)*2))
			rng.Read(buf)
		} else {
			buf = append([]byte(nil), valid...)
			for j := 0; j < 1+rng.Intn(4); j++ {
				if len(buf) > 0 {
					buf[rng.Intn(len(buf))] ^= byte(1 << rng.Intn(8))
				}
			}
			if rng.Intn(3) == 0 && len(buf) > 0 {
				buf = buf[:rng.Intn(len(buf))]
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %x: %v", buf, r)
				}
			}()
			Unmarshal(buf)
		}()
	}
}

// TestParseNeverPanics fuzzes the IDL text parser with random source
// text and mutations of valid source.
func TestParseNeverPanics(t *testing.T) {
	valid := `
interface Fuzzed {
	read(offset int64, n int64) returns (data bytes);
	oneway fire(addr address);
}`
	alphabet := "interface(){};, \n\treturnsonewayint64bytesxyz_0"
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 4000; i++ {
		var src string
		if i%2 == 0 {
			var sb strings.Builder
			for j := 0; j < rng.Intn(120); j++ {
				sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
			}
			src = sb.String()
		} else {
			b := []byte(valid)
			for j := 0; j < 1+rng.Intn(5); j++ {
				b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
			}
			src = string(b)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			Parse(src)
		}()
	}
}
