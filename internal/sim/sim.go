// Package sim builds whole Legion deployments and drives workloads
// over them, collecting the per-component request counts that §5's
// scalability claims are about. It is the measurement substrate for
// every experiment in EXPERIMENTS.md: the paper has no testbed
// numbers, so the simulator provides the controlled environment in
// which the paper's mechanisms (caching, the Binding Agent tree, class
// cloning, stale-binding recovery) can be demonstrated quantitatively.
package sim

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/class"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/idl"
	"repro/internal/implreg"
	"repro/internal/loid"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/wire"
)

// WorkerImplName is the instance implementation the simulator deploys:
// a small stateful object answering Work() and carrying a padded state
// blob so lifecycle experiments can scale state size.
const WorkerImplName = "sim.worker"

// NewWorkerImpl is the implreg factory for WorkerImplName.
func NewWorkerImpl() rt.Impl {
	var (
		mu    sync.Mutex
		calls uint64
		pad   []byte
	)
	return &rt.Behavior{
		Iface: WorkerInterface(),
		Handlers: map[string]rt.Handler{
			"Work": func(inv *rt.Invocation) ([][]byte, error) {
				mu.Lock()
				calls++
				n := calls
				mu.Unlock()
				return [][]byte{wire.Uint64(n)}, nil
			},
			"Pad": func(inv *rt.Invocation) ([][]byte, error) {
				raw, err := inv.Arg(0)
				if err != nil {
					return nil, err
				}
				sz, err := wire.AsUint64(raw)
				if err != nil {
					return nil, err
				}
				mu.Lock()
				pad = make([]byte, sz)
				mu.Unlock()
				return nil, nil
			},
		},
		Save: func() ([]byte, error) {
			mu.Lock()
			defer mu.Unlock()
			out := wire.Uint64(calls)
			return append(out, pad...), nil
		},
		Restore: func(s []byte) error {
			if len(s) == 0 {
				return nil
			}
			if len(s) < 8 {
				return fmt.Errorf("sim.worker: short state")
			}
			mu.Lock()
			defer mu.Unlock()
			var err error
			calls, err = wire.AsUint64(s[:8])
			pad = append([]byte(nil), s[8:]...)
			return err
		},
	}
}

// WorkerInterface describes the worker instances.
func WorkerInterface() *idl.Interface {
	return idl.NewInterface("SimWorker",
		idl.MethodSig{Name: "Work", Returns: []idl.Param{{Name: "calls", Type: idl.TUint64}}},
		idl.MethodSig{Name: "Pad", Params: []idl.Param{{Name: "size", Type: idl.TUint64}}},
	)
}

// Config sizes a simulated deployment.
type Config struct {
	Jurisdictions        int
	HostsPerJurisdiction int
	LeafAgents           int
	AgentFanout          int
	AgentCacheSize       int
	Classes              int
	ObjectsPerClass      int
	Clients              int
	ClientCacheSize      int
	CallTimeout          time.Duration
	BindingTTL           time.Duration
	Seed                 int64
	// TraceSampleEvery, when > 0, installs a tracer sampling one root
	// invocation in N (1 = trace everything). 0 disables tracing.
	TraceSampleEvery int
	// CheckpointEvery, when > 0, runs the hosts' checkpoint loops: a
	// crashed host's residents then reactivate from their newest
	// checkpoint instead of a blank state. 0 keeps checkpointing off.
	CheckpointEvery time.Duration
	// LoadReportEvery, when > 0, runs the hosts' load-vector heartbeat
	// loops, feeding the Magistrates' load tables (load-aware placement,
	// rebalancing). 0 keeps reporting off.
	LoadReportEvery time.Duration
	// DataDir, when set, makes the deployment durable (on-disk OPRs and
	// a restorable system snapshot) — see core.Options.DataDir.
	DataDir string
	// StoreBackend selects the jurisdiction storage engine ("mem",
	// "file", "segment"); see core.Options.StoreBackend. A disk backend
	// with no DataDir gets a temporary directory, removed on Close.
	StoreBackend string
	// Obs, when true, builds the observability plane: per-method SLO
	// histograms with trace exemplars, a flight recorder on every node,
	// and LQL queries over the Magistrates' live metadata (Sim.Query).
	Obs bool
	// SlowCall overrides the plane's slow-call threshold (0 keeps
	// obs.DefaultSlowCall); only meaningful with Obs.
	SlowCall time.Duration
	// Clock, when set, puts the whole deployment on an explicit time
	// base (see core.Options.Clock). A clock.Virtual makes every reply
	// timer, backoff, TTL, and loop tick deterministic — tests drive
	// time with Advance/Step instead of sleeping.
	Clock clock.Clock
}

func (c *Config) fill() {
	if c.Jurisdictions <= 0 {
		c.Jurisdictions = 1
	}
	if c.HostsPerJurisdiction <= 0 {
		c.HostsPerJurisdiction = 1
	}
	if c.LeafAgents <= 0 {
		c.LeafAgents = 1
	}
	if c.Classes <= 0 {
		c.Classes = 1
	}
	if c.ObjectsPerClass <= 0 {
		c.ObjectsPerClass = 1
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Sim is a built deployment plus its population.
type Sim struct {
	Config  Config
	Sys     *core.System
	Reg     *metrics.Registry
	Classes []*class.Client
	// Objects holds every created instance, grouped by class.
	Objects [][]loid.LOID
	// Flat is every object in one slice.
	Flat    []loid.LOID
	Clients []*rt.Caller
	// Tracer is non-nil when Config.TraceSampleEvery > 0; every node in
	// the deployment records spans into it.
	Tracer *trace.Tracer
	// Plane is non-nil when Config.Obs is set: the deployment's
	// observability plane (LQL queries, flight recorder, SLO
	// histograms).
	Plane *obs.Plane

	rng *rand.Rand
	mu  sync.Mutex

	// tmpData is a Build-created store directory (StoreBackend with no
	// DataDir); Close removes it.
	tmpData string
}

// Build boots a system per cfg and populates classes, objects, and
// clients.
func Build(cfg Config) (*Sim, error) {
	cfg.fill()
	impls := implreg.NewRegistry()
	impls.MustRegister(WorkerImplName, NewWorkerImpl)
	reg := metrics.NewRegistry()
	var tracer *trace.Tracer
	if cfg.TraceSampleEvery > 0 {
		tracer = trace.New(trace.Config{SampleEvery: cfg.TraceSampleEvery})
	}
	var plane *obs.Plane
	if cfg.Obs {
		plane = obs.NewPlane(obs.Config{
			Host:     "sim",
			Registry: reg,
			Tracer:   tracer,
			SlowCall: cfg.SlowCall,
		})
	}
	tmpData, vaultDir := "", ""
	if cfg.StoreBackend != "" && cfg.StoreBackend != "mem" && cfg.DataDir == "" {
		// A disk backend needs a root; a throwaway vault keeps the
		// deployment otherwise non-durable (no snapshot semantics).
		d, err := os.MkdirTemp("", "legion-sim-store-")
		if err != nil {
			return nil, fmt.Errorf("sim: store dir: %w", err)
		}
		tmpData, vaultDir = d, d
	}
	sys, err := core.Boot(core.Options{
		Registry:             reg,
		Impls:                impls,
		Jurisdictions:        cfg.Jurisdictions,
		HostsPerJurisdiction: cfg.HostsPerJurisdiction,
		LeafAgents:           cfg.LeafAgents,
		AgentFanout:          cfg.AgentFanout,
		AgentCacheSize:       cfg.AgentCacheSize,
		ClientCacheSize:      cfg.ClientCacheSize,
		BindingTTL:           cfg.BindingTTL,
		CallTimeout:          cfg.CallTimeout,
		Tracer:               tracer,
		CheckpointEvery:      cfg.CheckpointEvery,
		LoadReportEvery:      cfg.LoadReportEvery,
		DataDir:              cfg.DataDir,
		VaultDir:             vaultDir,
		StoreBackend:         cfg.StoreBackend,
		Obs:                  plane,
		Clock:                cfg.Clock,
	})
	if err != nil {
		if tmpData != "" {
			os.RemoveAll(tmpData)
		}
		return nil, err
	}
	s := &Sim{Config: cfg, Sys: sys, Reg: reg, Tracer: tracer, Plane: plane, rng: rand.New(rand.NewSource(cfg.Seed)), tmpData: tmpData}

	var allMags []loid.LOID
	for _, j := range sys.Jurisdictions {
		allMags = append(allMags, j.Magistrate)
	}
	for c := 0; c < cfg.Classes; c++ {
		name := fmt.Sprintf("Worker%d", c)
		cl, _, err := sys.DeriveClass(name, WorkerImplName, WorkerInterface(), 0)
		if err != nil {
			sys.Close()
			return nil, fmt.Errorf("sim: derive %s: %w", name, err)
		}
		if err := cl.SetDefaultMagistrates(allMags); err != nil {
			sys.Close()
			return nil, err
		}
		s.Classes = append(s.Classes, cl)
		var objs []loid.LOID
		for o := 0; o < cfg.ObjectsPerClass; o++ {
			l, _, err := cl.Create(nil, loid.Nil, loid.Nil)
			if err != nil {
				sys.Close()
				return nil, fmt.Errorf("sim: create object %d of %s: %w", o, name, err)
			}
			objs = append(objs, l)
			s.Flat = append(s.Flat, l)
		}
		s.Objects = append(s.Objects, objs)
	}
	for i := 0; i < cfg.Clients; i++ {
		cli, err := sys.NewClient(loid.New(300, uint64(i+1), loid.DeriveKey(fmt.Sprintf("client/%d", i))))
		if err != nil {
			sys.Close()
			return nil, err
		}
		s.Clients = append(s.Clients, cli)
	}
	return s, nil
}

// Close tears the deployment down.
func (s *Sim) Close() {
	s.Sys.Close()
	if s.tmpData != "" {
		os.RemoveAll(s.tmpData)
	}
}

// ResetMetrics zeroes all counters and every client cache's stats —
// called between warm-up and measurement phases.
func (s *Sim) ResetMetrics() {
	s.Reg.Reset()
	for _, c := range s.Clients {
		c.Cache().ResetStats()
	}
}

// Query evaluates one LQL query on the deployment's observability
// plane (Config.Obs must be set).
func (s *Sim) Query(q string) (*obs.Table, error) {
	return s.Plane.Query(q)
}

// Intn is the sim's seeded randomness.
func (s *Sim) Intn(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Intn(n)
}

// Float64 is the sim's seeded uniform variate.
func (s *Sim) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}
