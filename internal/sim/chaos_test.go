package sim

import (
	"context"
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/loid"
	"repro/internal/rt"
	"repro/internal/wire"
)

// workersOf filters a crash's lost LOIDs down to worker instances —
// hosts also run class objects, which answer a different interface.
func workersOf(s *Sim, lost []loid.LOID) []loid.LOID {
	var out []loid.LOID
	for _, l := range lost {
		for _, f := range s.Flat {
			if f.SameObject(l) {
				out = append(out, l)
				break
			}
		}
	}
	return out
}

// TestCrashRecoveryThroughMagistrate is the deterministic core of the
// chaos story: a host crash loses its residents, and once the
// Magistrate is told, plain stale-binding refresh re-activates them on
// a surviving host — no client-side intervention.
func TestCrashRecoveryThroughMagistrate(t *testing.T) {
	s, err := Build(Config{
		HostsPerJurisdiction: 2,
		ObjectsPerClass:      4,
		CallTimeout:          200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cli := s.Clients[0]
	for _, l := range s.Flat {
		if res, err := cli.Call(l, "Work"); err != nil || res.Code != wire.OK {
			t.Fatalf("warm call to %v: %v %v", l, res, err)
		}
	}

	// Crash host 1, not host 0: placement slot 0 carries the class
	// object, whose volatile logical table is not (yet) crash-safe.
	allLost, err := s.CrashHost(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lost := workersOf(s, allLost)
	if len(lost) == 0 {
		t.Fatal("host 1 was running no workers; round-robin placement should have given it some")
	}
	// Calls to the lost objects fail while the magistrate is unaware —
	// refresh keeps returning the stale location.
	res, err := cli.Call(lost[0], "Work")
	if err == nil && res.Code == wire.OK {
		t.Fatal("call to crashed object succeeded with no recovery in play")
	}

	// Detection: tell the magistrate. Every lost object must come back
	// on the surviving host via the ordinary refresh path.
	s.Sys.Jurisdictions[0].MagistrateImpl().HostFailed(s.Sys.Jurisdictions[0].Hosts[1])
	for _, l := range lost {
		if res, err := cli.Call(l, "Work"); err != nil || res.Code != wire.OK {
			t.Fatalf("call to %v after HostFailed: %v %v", l, res, err)
		}
	}

	// Reboot the host; the whole population stays reachable.
	if err := s.RestartHost(0, 1); err != nil {
		t.Fatal(err)
	}
	for _, l := range s.Flat {
		if res, err := cli.Call(l, "Work"); err != nil || res.Code != wire.OK {
			t.Fatalf("call to %v after restart: %v %v", l, res, err)
		}
	}
}

// TestCrashRecoveryWithCheckpoints: with the checkpoint loop running, a
// DETECTED crash loses nothing that was checkpointed. Every lost worker
// is reachable again immediately — post-crash success returns to 100%
// with no HostRecovered and no manual intervention — and each continues
// from its pre-crash call count. The magistrate also reactivates the
// losses eagerly in the background, so even objects nobody calls are
// running again.
func TestCrashRecoveryWithCheckpoints(t *testing.T) {
	s, err := Build(Config{
		HostsPerJurisdiction: 3,
		ObjectsPerClass:      6,
		CallTimeout:          200 * time.Millisecond,
		CheckpointEvery:      time.Hour, // rounds are forced explicitly below
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cli := s.Clients[0]
	pre := make(map[loid.LOID]uint64)
	for _, l := range s.Flat {
		for i := 0; i < 3; i++ {
			res, err := cli.Call(l, "Work")
			if err != nil || res.Code != wire.OK {
				t.Fatalf("warm call to %v: %v %v", l, res, err)
			}
			raw, _ := res.Result(0)
			pre[l], _ = wire.AsUint64(raw)
		}
	}
	if n, err := s.CheckpointNow(); err != nil || n == 0 {
		t.Fatalf("CheckpointNow = %d, %v", n, err)
	}

	allLost, err := s.CrashHostAndDetect(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lost := workersOf(s, allLost)
	if len(lost) == 0 {
		t.Fatal("host 1 ran no workers")
	}
	// 100% of post-crash calls succeed, and none lost checkpointed state.
	for _, l := range s.Flat {
		res, err := cli.Call(l, "Work")
		if err != nil || res.Code != wire.OK {
			t.Fatalf("call to %v after crash+detect: %v %v", l, res, err)
		}
		raw, _ := res.Result(0)
		if v, _ := wire.AsUint64(raw); v != pre[l]+1 {
			t.Errorf("%v: count = %d after recovery, want %d (state lost)", l, v, pre[l]+1)
		}
	}
	// The eager background recovery covered every lost object — either
	// through one snapshot-shipped bulk adoption or per-OPR reactivation.
	recovered := func() uint64 {
		return s.Reg.Counter("mag/reactivations").Value() +
			s.Reg.Counter("mag/bulk_adopted_objects").Value()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if recovered() >= uint64(len(allLost)) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("recovered objects = %d, want >= %d", recovered(), len(allLost))
}

// TestCrashMidCallRecovers: a caller already blocked on a dead host
// rides through failure detection — its retry loop refreshes into the
// reactivated object and the call completes with pre-crash state
// intact.
func TestCrashMidCallRecovers(t *testing.T) {
	s, err := Build(Config{
		HostsPerJurisdiction: 2,
		ObjectsPerClass:      4,
		CallTimeout:          150 * time.Millisecond,
		CheckpointEvery:      time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cli := s.Clients[0]
	pre := make(map[loid.LOID]uint64)
	for _, l := range s.Flat {
		for i := 0; i < 2; i++ {
			res, err := cli.Call(l, "Work")
			if err != nil || res.Code != wire.OK {
				t.Fatalf("warm call: %v %v", res, err)
			}
			raw, _ := res.Result(0)
			pre[l.ID()], _ = wire.AsUint64(raw)
		}
	}
	if _, err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	// Silent crash: nobody is told yet, so the in-flight call below
	// burns wave timeouts against the dead endpoint.
	allLost, err := s.CrashHost(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lost := workersOf(s, allLost)
	if len(lost) == 0 {
		t.Fatal("host 1 ran no workers")
	}
	cli.Retry = rt.RetryPolicy{MaxAttempts: 40, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	var (
		val     uint64
		callErr error
		done    = make(chan struct{})
	)
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		res, err := cli.CallCtx(ctx, lost[0], "Work")
		if err == nil {
			err = res.Err()
		}
		if err == nil {
			raw, _ := res.Result(0)
			val, _ = wire.AsUint64(raw)
		}
		callErr = err
	}()
	// Let the call start failing against the dead host, then deliver
	// the failure notice mid-flight.
	time.Sleep(50 * time.Millisecond)
	s.Sys.Jurisdictions[0].MagistrateImpl().HostFailed(s.Sys.Jurisdictions[0].Hosts[1])
	<-done
	if callErr != nil {
		t.Fatalf("in-flight call never recovered: %v", callErr)
	}
	if want := pre[lost[0].ID()] + 1; val != want {
		t.Errorf("mid-call recovery count = %d, want %d", val, want)
	}
}

// TestHealthDetectorClosesLoop: with the shared tracker installed and
// the detector running, nobody has to tell the Magistrate anything —
// client-side breaker evidence does it.
func TestHealthDetectorClosesLoop(t *testing.T) {
	s, err := Build(Config{
		HostsPerJurisdiction: 2,
		ObjectsPerClass:      4,
		Clients:              2,
		CallTimeout:          100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr := s.EnableHealth(health.Config{FailureThreshold: 2, OpenDuration: 250 * time.Millisecond})
	stopDet := s.StartHealthDetector(tr, 20*time.Millisecond)
	defer stopDet()
	cli := s.Clients[0]
	for _, l := range s.Flat {
		if res, err := cli.Call(l, "Work"); err != nil || res.Code != wire.OK {
			t.Fatalf("warm call: %v %v", res, err)
		}
	}

	allLost, err := s.CrashHost(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lost := workersOf(s, allLost)
	if len(lost) == 0 {
		t.Fatal("host 1 ran no workers")
	}
	// Burn a few calls to feed the breaker (each pays one wave
	// timeout), then the detector flips the records and calls recover.
	deadlineAt := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadlineAt) {
		if res, err := cli.Call(lost[0], "Work"); err == nil && res.Code == wire.OK {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("breaker-driven detection never recovered the lost object")
	}
	for _, l := range lost {
		if res, err := cli.Call(l, "Work"); err != nil || res.Code != wire.OK {
			t.Fatalf("call to %v after detection: %v %v", l, res, err)
		}
	}
	if err := s.RestartHost(0, 1); err != nil {
		t.Fatal(err)
	}
}
