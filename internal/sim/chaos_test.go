package sim

import (
	"testing"
	"time"

	"repro/internal/health"
	"repro/internal/loid"
	"repro/internal/wire"
)

// workersOf filters a crash's lost LOIDs down to worker instances —
// hosts also run class objects, which answer a different interface.
func workersOf(s *Sim, lost []loid.LOID) []loid.LOID {
	var out []loid.LOID
	for _, l := range lost {
		for _, f := range s.Flat {
			if f.SameObject(l) {
				out = append(out, l)
				break
			}
		}
	}
	return out
}

// TestCrashRecoveryThroughMagistrate is the deterministic core of the
// chaos story: a host crash loses its residents, and once the
// Magistrate is told, plain stale-binding refresh re-activates them on
// a surviving host — no client-side intervention.
func TestCrashRecoveryThroughMagistrate(t *testing.T) {
	s, err := Build(Config{
		HostsPerJurisdiction: 2,
		ObjectsPerClass:      4,
		CallTimeout:          200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cli := s.Clients[0]
	for _, l := range s.Flat {
		if res, err := cli.Call(l, "Work"); err != nil || res.Code != wire.OK {
			t.Fatalf("warm call to %v: %v %v", l, res, err)
		}
	}

	// Crash host 1, not host 0: placement slot 0 carries the class
	// object, whose volatile logical table is not (yet) crash-safe.
	allLost, err := s.CrashHost(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lost := workersOf(s, allLost)
	if len(lost) == 0 {
		t.Fatal("host 1 was running no workers; round-robin placement should have given it some")
	}
	// Calls to the lost objects fail while the magistrate is unaware —
	// refresh keeps returning the stale location.
	res, err := cli.Call(lost[0], "Work")
	if err == nil && res.Code == wire.OK {
		t.Fatal("call to crashed object succeeded with no recovery in play")
	}

	// Detection: tell the magistrate. Every lost object must come back
	// on the surviving host via the ordinary refresh path.
	s.Sys.Jurisdictions[0].MagistrateImpl().HostFailed(s.Sys.Jurisdictions[0].Hosts[1])
	for _, l := range lost {
		if res, err := cli.Call(l, "Work"); err != nil || res.Code != wire.OK {
			t.Fatalf("call to %v after HostFailed: %v %v", l, res, err)
		}
	}

	// Reboot the host; the whole population stays reachable.
	if err := s.RestartHost(0, 1); err != nil {
		t.Fatal(err)
	}
	for _, l := range s.Flat {
		if res, err := cli.Call(l, "Work"); err != nil || res.Code != wire.OK {
			t.Fatalf("call to %v after restart: %v %v", l, res, err)
		}
	}
}

// TestHealthDetectorClosesLoop: with the shared tracker installed and
// the detector running, nobody has to tell the Magistrate anything —
// client-side breaker evidence does it.
func TestHealthDetectorClosesLoop(t *testing.T) {
	s, err := Build(Config{
		HostsPerJurisdiction: 2,
		ObjectsPerClass:      4,
		Clients:              2,
		CallTimeout:          100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr := s.EnableHealth(health.Config{FailureThreshold: 2, OpenDuration: 250 * time.Millisecond})
	stopDet := s.StartHealthDetector(tr, 20*time.Millisecond)
	defer stopDet()
	cli := s.Clients[0]
	for _, l := range s.Flat {
		if res, err := cli.Call(l, "Work"); err != nil || res.Code != wire.OK {
			t.Fatalf("warm call: %v %v", res, err)
		}
	}

	allLost, err := s.CrashHost(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lost := workersOf(s, allLost)
	if len(lost) == 0 {
		t.Fatal("host 1 ran no workers")
	}
	// Burn a few calls to feed the breaker (each pays one wave
	// timeout), then the detector flips the records and calls recover.
	deadlineAt := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadlineAt) {
		if res, err := cli.Call(lost[0], "Work"); err == nil && res.Code == wire.OK {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("breaker-driven detection never recovered the lost object")
	}
	for _, l := range lost {
		if res, err := cli.Call(l, "Work"); err != nil || res.Code != wire.OK {
			t.Fatalf("call to %v after detection: %v %v", l, res, err)
		}
	}
	if err := s.RestartHost(0, 1); err != nil {
		t.Fatal(err)
	}
}
