package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/class"
	"repro/internal/loid"
	"repro/internal/magistrate"
	"repro/internal/wire"
)

// workerSeed derives the RNG seed for worker ci of a run seeded with
// seed, by one splitmix64 round over the combined value (the same
// mixer rt.Caller uses for its jitter stream). Plain seed+ci is NOT
// enough: two sims with adjacent seeds — or a chaos restart reusing a
// worker index — would replay overlapping streams, correlating runs
// that must be independent.
func workerSeed(seed int64, ci int) int64 {
	s := uint64(seed)*0x9E3779B97F4A7C15 + uint64(ci)*0xBF58476D1CE4E5B9 + 0x9E3779B97F4A7C15
	s ^= s >> 30
	s *= 0xBF58476D1CE4E5B9
	s ^= s >> 27
	s *= 0x94D049BB133111EB
	s ^= s >> 31
	return int64(s)
}

// LookupWorkload describes a reference stream for RunLookups.
type LookupWorkload struct {
	// References is the total number of object references to issue.
	References int
	// Locality is the probability a reference targets the client's
	// home subset ("we assume that most accesses will be local",
	// §5.2): each client's home subset is HomeSize objects chosen from
	// the population.
	Locality float64
	// HomeSize is the size of each client's home subset (default 4).
	HomeSize int
	// Concurrent issues references from all clients in parallel.
	Concurrent bool
}

// LookupResult aggregates a lookup run.
type LookupResult struct {
	References int
	Failures   int
	Elapsed    time.Duration
	// ClientHitRate is the mean local binding-cache hit rate.
	ClientHitRate float64
	// AgentRequests is the total requests served by all Binding
	// Agents; LegionClassRequests and ClassRequests count requests to
	// the metaclass and to all class objects.
	AgentRequests       uint64
	LegionClassRequests uint64
	ClassRequests       uint64
	MagistrateRequests  uint64
	// MeanLatency is the mean per-call latency.
	MeanLatency time.Duration
}

// RunLookups drives the reference stream and reports per-component
// load. Callers usually ResetMetrics first.
func (s *Sim) RunLookups(w LookupWorkload) (LookupResult, error) {
	if w.HomeSize <= 0 {
		w.HomeSize = 4
	}
	if w.HomeSize > len(s.Flat) {
		w.HomeSize = len(s.Flat)
	}
	if len(s.Flat) == 0 {
		return LookupResult{}, fmt.Errorf("sim: no objects")
	}
	// Assign each client a home subset.
	homes := make([][]loid.LOID, len(s.Clients))
	for i := range s.Clients {
		start := s.Intn(len(s.Flat))
		home := make([]loid.LOID, 0, w.HomeSize)
		for k := 0; k < w.HomeSize; k++ {
			home = append(home, s.Flat[(start+k)%len(s.Flat)])
		}
		homes[i] = home
	}

	perClient := w.References / len(s.Clients)
	if perClient == 0 {
		perClient = 1
	}
	var (
		failures  int
		totalRefs int
		totalLat  time.Duration
		mu        sync.Mutex
	)
	start := time.Now()
	runOne := func(ci int, rng *rand.Rand) {
		cli := s.Clients[ci]
		home := homes[ci]
		var localFail, localRefs int
		var localLat time.Duration
		for r := 0; r < perClient; r++ {
			var target loid.LOID
			if rng.Float64() < w.Locality {
				target = home[rng.Intn(len(home))]
			} else {
				target = s.Flat[rng.Intn(len(s.Flat))]
			}
			t0 := time.Now()
			res, err := cli.Call(target, "Work")
			localLat += time.Since(t0)
			localRefs++
			if err != nil || res.Code != wire.OK {
				localFail++
			}
		}
		mu.Lock()
		failures += localFail
		totalRefs += localRefs
		totalLat += localLat
		mu.Unlock()
	}
	if w.Concurrent {
		var wg sync.WaitGroup
		for ci := range s.Clients {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				runOne(ci, rand.New(rand.NewSource(workerSeed(s.Config.Seed, ci))))
			}(ci)
		}
		wg.Wait()
	} else {
		for ci := range s.Clients {
			runOne(ci, rand.New(rand.NewSource(workerSeed(s.Config.Seed, ci))))
		}
	}
	elapsed := time.Since(start)

	var hitSum float64
	for _, c := range s.Clients {
		hitSum += c.Cache().Stats().HitRate()
	}
	res := LookupResult{
		References:          totalRefs,
		Failures:            failures,
		Elapsed:             elapsed,
		ClientHitRate:       hitSum / float64(len(s.Clients)),
		AgentRequests:       s.Reg.SumCounters("req/bindagent/"),
		LegionClassRequests: s.Reg.Counter("req/class/LegionClass").Value(),
		ClassRequests:       s.Reg.SumCounters("req/class/") + s.Reg.SumCounters("req/obj/"),
		MagistrateRequests:  s.Reg.SumCounters("req/magistrate/"),
	}
	if totalRefs > 0 {
		res.MeanLatency = totalLat / time.Duration(totalRefs)
	}
	return res, nil
}

// ChurnResult reports a create/delete churn run.
type ChurnResult struct {
	Creates, Deletes, Failures int
	Elapsed                    time.Duration
	CreatesPerSec              float64
}

// RunChurn creates and deletes n objects on the given class, measuring
// creation throughput (E8).
func (s *Sim) RunChurn(classIdx, n int, deleteAfter bool) (ChurnResult, error) {
	if classIdx >= len(s.Classes) {
		return ChurnResult{}, fmt.Errorf("sim: class index %d out of range", classIdx)
	}
	cl := s.Classes[classIdx]
	var res ChurnResult
	start := time.Now()
	var created []loid.LOID
	for i := 0; i < n; i++ {
		l, _, err := cl.Create(nil, loid.Nil, loid.Nil)
		if err != nil {
			res.Failures++
			continue
		}
		created = append(created, l)
		res.Creates++
	}
	if deleteAfter {
		for _, l := range created {
			if err := cl.Delete(l); err != nil {
				res.Failures++
				continue
			}
			res.Deletes++
		}
	}
	res.Elapsed = time.Since(start)
	if res.Elapsed > 0 {
		res.CreatesPerSec = float64(res.Creates) / res.Elapsed.Seconds()
	}
	return res, nil
}

// MigrateRandom deactivates (mode "deactivate") or moves (mode "move")
// one random object, returning which. Experiments inject churn with it
// while lookups run (E5).
func (s *Sim) MigrateRandom(mode string) (loid.LOID, error) {
	if len(s.Flat) == 0 {
		return loid.Nil, fmt.Errorf("sim: no objects")
	}
	target := s.Flat[s.Intn(len(s.Flat))]
	boot := s.Sys.BootClient()
	// Find the holding magistrate.
	for ji, j := range s.Sys.Jurisdictions {
		mc := magistrate.NewClient(boot, j.Magistrate)
		known, active, err := mc.HasObject(target)
		if err != nil || !known {
			continue
		}
		switch mode {
		case "deactivate":
			if !active {
				return target, nil
			}
			return target, mc.Deactivate(target)
		case "move":
			dst := s.Sys.Jurisdictions[(ji+1)%len(s.Sys.Jurisdictions)]
			if dst.Magistrate.SameObject(j.Magistrate) {
				return target, mc.Deactivate(target)
			}
			if err := mc.Move(target, dst.Magistrate); err != nil {
				return target, err
			}
			// The mover updates the class's view (§4.1.4).
			cl := s.classOf(target)
			if cl == nil {
				return target, fmt.Errorf("sim: no class for %v", target)
			}
			if res, err := boot.Call(cl.Class(), "SetCurrentMagistrates",
				wire.LOID(target), wire.LOIDList([]loid.LOID{dst.Magistrate})); err != nil || res.Code != wire.OK {
				return target, fmt.Errorf("sim: update class after move: %v %v", res, err)
			}
			return target, cl.NotifyDeactivated(target)
		default:
			return loid.Nil, fmt.Errorf("sim: unknown migration mode %q", mode)
		}
	}
	return loid.Nil, fmt.Errorf("sim: no magistrate knows %v", target)
}

func (s *Sim) classOf(l loid.LOID) *class.Client {
	for i, objs := range s.Objects {
		for _, o := range objs {
			if o.SameObject(l) {
				return s.Classes[i]
			}
		}
	}
	return nil
}
