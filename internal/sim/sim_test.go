package sim

import (
	"testing"
	"time"

	"repro/internal/binding"
	"repro/internal/clock"
	"repro/internal/wire"
)

func smallSim(t *testing.T, cfg Config) *Sim {
	t.Helper()
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestBuildPopulation(t *testing.T) {
	s := smallSim(t, Config{
		Jurisdictions: 2, HostsPerJurisdiction: 2,
		Classes: 2, ObjectsPerClass: 3, Clients: 2,
	})
	if len(s.Classes) != 2 || len(s.Flat) != 6 || len(s.Clients) != 2 {
		t.Fatalf("population: %d classes, %d objects, %d clients",
			len(s.Classes), len(s.Flat), len(s.Clients))
	}
}

func TestRunLookupsSequential(t *testing.T) {
	s := smallSim(t, Config{Classes: 1, ObjectsPerClass: 4, Clients: 2})
	res, err := s.RunLookups(LookupWorkload{References: 40, Locality: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Errorf("failures = %d", res.Failures)
	}
	if res.References < 40 {
		t.Errorf("references = %d", res.References)
	}
	if res.ClientHitRate <= 0 {
		t.Errorf("hit rate = %v", res.ClientHitRate)
	}
	if res.MeanLatency <= 0 {
		t.Error("latency not measured")
	}
}

func TestRunLookupsConcurrent(t *testing.T) {
	s := smallSim(t, Config{Classes: 1, ObjectsPerClass: 4, Clients: 4})
	res, err := s.RunLookups(LookupWorkload{References: 80, Locality: 0.5, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Errorf("failures = %d", res.Failures)
	}
}

func TestCacheSizeAffectsAgentTraffic(t *testing.T) {
	// E2's mechanism in miniature: tiny client caches push misses to
	// the agents; large caches absorb them.
	run := func(cacheSize int) LookupResult {
		s := smallSim(t, Config{
			Classes: 1, ObjectsPerClass: 16, Clients: 2,
			ClientCacheSize: cacheSize,
		})
		// Warm up, then measure.
		s.RunLookups(LookupWorkload{References: 64, Locality: 0})
		s.ResetMetrics()
		res, err := s.RunLookups(LookupWorkload{References: 64, Locality: 0})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := run(2)
	large := run(64)
	if small.AgentRequests <= large.AgentRequests {
		t.Errorf("agent traffic: small-cache=%d large-cache=%d, want small > large",
			small.AgentRequests, large.AgentRequests)
	}
	if large.ClientHitRate <= small.ClientHitRate {
		t.Errorf("hit rates: small=%v large=%v", small.ClientHitRate, large.ClientHitRate)
	}
}

func TestRunChurn(t *testing.T) {
	s := smallSim(t, Config{Classes: 1, ObjectsPerClass: 1, Clients: 1})
	res, err := s.RunChurn(0, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Creates != 5 || res.Deletes != 5 || res.Failures != 0 {
		t.Errorf("churn = %+v", res)
	}
	if res.CreatesPerSec <= 0 {
		t.Error("throughput not measured")
	}
	if _, err := s.RunChurn(9, 1, false); err == nil {
		t.Error("bad class index accepted")
	}
}

func TestMigrateRandomDeactivate(t *testing.T) {
	s := smallSim(t, Config{Classes: 1, ObjectsPerClass: 2, Clients: 1})
	target, err := s.MigrateRandom("deactivate")
	if err != nil {
		t.Fatal(err)
	}
	// The object heals on next use.
	cli := s.Clients[0]
	res, err := cli.Call(target, "Work")
	if err != nil || res.Code != wire.OK {
		t.Fatalf("call after deactivate: %v %v", res, err)
	}
}

func TestMigrateRandomMove(t *testing.T) {
	s := smallSim(t, Config{Jurisdictions: 2, Classes: 1, ObjectsPerClass: 2, Clients: 1})
	target, err := s.MigrateRandom("move")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Clients[0].Call(target, "Work")
	if err != nil || res.Code != wire.OK {
		t.Fatalf("call after move: %v %v", res, err)
	}
	if _, err := s.MigrateRandom("teleport"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestResetMetrics(t *testing.T) {
	s := smallSim(t, Config{Classes: 1, ObjectsPerClass: 2, Clients: 1})
	s.RunLookups(LookupWorkload{References: 4, Locality: 1})
	s.ResetMetrics()
	if v := s.Reg.SumCounters("req/"); v != 0 {
		t.Errorf("counters after reset = %d", v)
	}
	if hr := s.Clients[0].Cache().Stats(); hr.Hits != 0 {
		t.Errorf("client stats after reset = %+v", hr)
	}
}

func TestWorkerStatePersistsThroughLifecycle(t *testing.T) {
	s := smallSim(t, Config{Classes: 1, ObjectsPerClass: 1, Clients: 1})
	obj := s.Flat[0]
	cli := s.Clients[0]
	for i := 0; i < 3; i++ {
		cli.Call(obj, "Work")
	}
	if _, err := s.MigrateRandom("deactivate"); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Call(obj, "Work")
	if err != nil || res.Code != wire.OK {
		t.Fatal(err)
	}
	raw, _ := res.Result(0)
	if v, _ := wire.AsUint64(raw); v != 4 {
		t.Errorf("worker calls = %d, want 4 (state survived)", v)
	}
}

func TestLookupTimeoutConfig(t *testing.T) {
	s := smallSim(t, Config{Classes: 1, ObjectsPerClass: 1, Clients: 1, CallTimeout: 3 * time.Second})
	if s.Clients[0].Timeout != 3*time.Second {
		t.Errorf("client timeout = %v", s.Clients[0].Timeout)
	}
}

// TestVirtualClockDeployment boots the REAL fabric on a virtual
// clock: every node's reply timers, deadlines, binding-cache expiry,
// and the magistrates' binding TTLs read simulated time. Calls still
// complete — the mem transport is live goroutines — but no component
// consults the wall, so a binding stamped with a virtual-time expiry
// only lapses when the test advances the virtual clock.
func TestVirtualClockDeployment(t *testing.T) {
	v := clock.NewVirtual(time.Time{})
	s := smallSim(t, Config{
		Classes: 1, ObjectsPerClass: 4, Clients: 2,
		BindingTTL: time.Hour,
		Clock:      v,
	})
	warm := func() {
		res, err := s.RunLookups(LookupWorkload{References: 40, Locality: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failures != 0 {
			t.Fatalf("failures under virtual clock = %d", res.Failures)
		}
	}
	warm()
	warm()

	// The clients' binding caches must judge expiry on the node's
	// virtual clock: re-stamp a live binding with a virtual-time TTL,
	// confirm it survives while time is frozen, then advance past it.
	c := s.Clients[0]
	target := s.Flat[0]
	b, ok := c.Cache().Get(target)
	if !ok {
		t.Fatalf("no cached binding for %v after a warm run", target)
	}
	c.Cache().Add(binding.Until(b.LOID, b.Address, v.Now().Add(time.Hour)))
	if _, ok := c.Cache().Get(target); !ok {
		t.Fatal("TTL binding expired with virtual time frozen")
	}
	v.Advance(2 * time.Hour)
	if _, ok := c.Cache().Get(target); ok {
		t.Fatal("binding still valid after advancing the virtual clock past its expiry")
	}
	// And the fabric recovers: the next run re-resolves the expired
	// binding with time standing still at epoch+2h.
	warm()
}
