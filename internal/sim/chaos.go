// Chaos: crash/restart churn for simulated deployments. A "crash"
// models a machine losing power — its network endpoint goes silent
// (frames vanish without errors, §4.3's partial-failure reality) and
// every resident object's volatile state is gone. Recovery follows the
// paper's own machinery: once the Magistrate learns of the failure,
// ordinary stale-binding refresh (§4.1.4) re-activates the lost
// objects on surviving hosts from their persistent representations.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/health"
	"repro/internal/host"
	"repro/internal/loid"
	"repro/internal/oa"
	"repro/internal/rt"
)

// hostSite resolves the j-th jurisdiction's h-th host to its pieces.
func (s *Sim) hostSite(j, h int) (loid.LOID, *host.Host, *rt.Node, error) {
	if j >= len(s.Sys.Jurisdictions) {
		return loid.Nil, nil, nil, fmt.Errorf("sim: no jurisdiction %d", j)
	}
	jur := s.Sys.Jurisdictions[j]
	if h >= len(jur.Hosts) {
		return loid.Nil, nil, nil, fmt.Errorf("sim: jurisdiction %d has no host %d", j, h)
	}
	hl := jur.Hosts[h]
	o, ok := s.Sys.FindObject(hl)
	if !ok {
		return loid.Nil, nil, nil, fmt.Errorf("sim: host object %v not found", hl)
	}
	hobj, ok := o.Impl().(*host.Host)
	if !ok {
		return loid.Nil, nil, nil, fmt.Errorf("sim: %v is not a Host", hl)
	}
	return hl, hobj, o.Node(), nil
}

// HostElement returns the network element of a host's node — the key
// the health layer tracks.
func (s *Sim) HostElement(j, h int) (oa.Element, error) {
	_, _, node, err := s.hostSite(j, h)
	if err != nil {
		return oa.Element{}, err
	}
	return node.Element(), nil
}

// CrashHost power-fails a host: its endpoint stops sending and
// receiving (silently — senders learn nothing until their timers
// fire), and every resident object dies without saving state. Nobody
// is notified: failure DETECTION is a separate concern (the health
// layer's, or the reboot reconcile in RestartHost). Returns the LOIDs
// that were lost.
func (s *Sim) CrashHost(j, h int) ([]loid.LOID, error) {
	hl, hobj, node, err := s.hostSite(j, h)
	if err != nil {
		return nil, err
	}
	id, ok := oa.MemID(node.Element())
	if !ok || s.Sys.Fabric == nil {
		return nil, fmt.Errorf("sim: host %v is not on a mem fabric", hl)
	}
	s.Sys.Fabric.Crash(id)
	return hobj.CrashResidents(), nil
}

// CrashHostAndDetect power-fails a host AND immediately reports the
// failure to the jurisdiction's Magistrate — a crash observed by an
// ideal failure detector. The magistrate flips the lost residents inert
// (each recovering its newest checkpoint, when checkpointing is on) and
// eagerly reactivates them on the surviving hosts; callers racing ahead
// of the reactivation heal through ordinary stale-binding refresh. No
// HostRecovered is needed for the population to be fully reachable
// again. Returns the LOIDs that were lost.
func (s *Sim) CrashHostAndDetect(j, h int) ([]loid.LOID, error) {
	lost, err := s.CrashHost(j, h)
	if err != nil {
		return nil, err
	}
	s.Sys.Jurisdictions[j].MagistrateImpl().HostFailed(s.Sys.Jurisdictions[j].Hosts[h])
	return lost, nil
}

// CheckpointNow forces one synchronous checkpoint round on every host.
func (s *Sim) CheckpointNow() (int, error) {
	return s.Sys.CheckpointNow()
}

// RestartHost reboots a crashed host. The machine comes back with its
// host daemon but none of the objects it was running; re-registration
// reconciles the Magistrate's view — anything it still believed active
// here is flipped inert (re-activatable elsewhere), then the host
// rejoins the jurisdiction's placement pool.
func (s *Sim) RestartHost(j, h int) error {
	hl, _, node, err := s.hostSite(j, h)
	if err != nil {
		return err
	}
	id, ok := oa.MemID(node.Element())
	if !ok || s.Sys.Fabric == nil {
		return fmt.Errorf("sim: host %v is not on a mem fabric", hl)
	}
	s.Sys.Fabric.Restart(id)
	mag := s.Sys.Jurisdictions[j].MagistrateImpl()
	mag.HostFailed(hl)
	mag.HostRecovered(hl, node.Address())
	return nil
}

// EnableHealth installs one shared health tracker across every client
// — failure evidence observed by one client immediately benefits the
// others (cooperative detection).
func (s *Sim) EnableHealth(cfg health.Config) *health.Tracker {
	tr := health.NewTracker(cfg, s.Reg)
	for _, c := range s.Clients {
		c.SetHealth(tr)
	}
	return tr
}

// DisableHealth removes the health layer from every client.
func (s *Sim) DisableHealth() {
	for _, c := range s.Clients {
		c.SetHealth(nil)
	}
}

// StartHealthDetector closes the detection loop: when the shared
// tracker's breaker for a host's endpoint opens, the jurisdiction's
// Magistrate is told the host failed, making its residents inert and
// therefore re-activatable by the very next binding refresh. This is
// the architectural payoff of per-destination health: the client-side
// breaker doubles as the system's failure detector. Returns a stop
// function.
func (s *Sim) StartHealthDetector(tr *health.Tracker, poll time.Duration) func() {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	type site struct {
		j  int
		hl loid.LOID
		el oa.Element
	}
	var sites []site
	for j, jur := range s.Sys.Jurisdictions {
		for h := range jur.Hosts {
			if el, err := s.HostElement(j, h); err == nil {
				sites = append(sites, site{j, jur.Hosts[h], el})
			}
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fired := make(map[oa.Element]bool)
		tick := time.NewTicker(poll)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				for _, st := range sites {
					open := tr.StateOf(st.el) == health.Open
					if open && !fired[st.el] {
						s.Sys.Jurisdictions[st.j].MagistrateImpl().HostFailed(st.hl)
						fired[st.el] = true
					} else if !open {
						fired[st.el] = false
					}
				}
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(stop) }); wg.Wait() }
}

// StartChurn crash/restart-cycles the given hosts of jurisdiction j:
// every period one of them (round-robin) is crashed, stays down for
// downFor, then reboots. Pass only hosts whose loss is survivable —
// class objects hold the logical instance table as volatile state, so
// the host carrying them (placement slot 0) must be left alone;
// replicating class-object state (§4.3) is future work. The stop
// function waits for any in-flight crash to be restarted, so the
// deployment is whole again when it returns. The counter reports how
// many crashes were injected.
func (s *Sim) StartChurn(j int, hosts []int, period, downFor time.Duration, crashes *int) (func(), error) {
	if j >= len(s.Sys.Jurisdictions) {
		return nil, fmt.Errorf("sim: no jurisdiction %d", j)
	}
	total := len(s.Sys.Jurisdictions[j].Hosts)
	n := len(hosts)
	if n == 0 || n >= total {
		return nil, fmt.Errorf("sim: churn over %d of %d hosts; at least one must be spared", n, total)
	}
	if downFor >= period {
		downFor = period / 2
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			case <-time.After(period - downFor):
			}
			if _, err := s.CrashHost(j, hosts[i]); err != nil {
				return
			}
			if crashes != nil {
				*crashes++
			}
			select {
			case <-stop:
			case <-time.After(downFor):
			}
			_ = s.RestartHost(j, hosts[i])
			select {
			case <-stop:
				return
			default:
			}
			i = (i + 1) % n
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(stop) }); wg.Wait() }, nil
}

// FaultLoad describes a deadline-bounded call stream for RunFaultCalls.
type FaultLoad struct {
	// Duration is how long the clients keep calling.
	Duration time.Duration
	// Deadline is each call's total budget (propagated end to end).
	Deadline time.Duration
	// Pace is the think time between a client's calls.
	Pace time.Duration
	// Retry is installed on every client for the run.
	Retry rt.RetryPolicy
}

// FaultResult aggregates a fault-injected run.
type FaultResult struct {
	Calls    int
	Failures int
	// P50 and P99 are latency percentiles over ALL calls — a failed
	// call's cost (usually the whole deadline) is part of the tail.
	P50, P99 time.Duration
}

// SuccessRate is the fraction of calls that completed OK.
func (r FaultResult) SuccessRate() float64 {
	if r.Calls == 0 {
		return 0
	}
	return float64(r.Calls-r.Failures) / float64(r.Calls)
}

// RunFaultCalls drives every client against random objects with
// per-call deadlines until the duration elapses, typically while
// StartChurn is killing hosts underneath it. The load is OPEN-LOOP:
// each client issues a call every Pace on a fixed schedule, so a call
// stalled on a dead host does not pause the arrival process —
// availability is accounted per offered call, the way a caller
// population (not a lone synchronous loop) would experience it.
//
// Latency is measured from each call's INTENDED send time on that
// fixed schedule, not from whenever the goroutine got around to
// sending. Measuring post-sleep send time is the classic coordinated
// omission bug: a stalled fabric silently stretches the inter-arrival
// gaps, the schedule self-throttles, and the reported p99 flatters
// exactly the outages the experiment exists to expose. Deadlines are
// anchored at the intended time too — a late send has already spent
// part of its budget queueing.
func (s *Sim) RunFaultCalls(w FaultLoad) FaultResult {
	if w.Pace <= 0 {
		w.Pace = 5 * time.Millisecond
	}
	clk := clock.Of(s.Config.Clock)
	var (
		mu        sync.Mutex
		failures  int
		latencies []time.Duration
	)
	var wg sync.WaitGroup
	start := clk.Now()
	until := start.Add(w.Duration)
	for ci, cli := range s.Clients {
		cli.Retry = w.Retry
		wg.Add(1)
		go func(ci int, cli *rt.Caller) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(s.Config.Seed, ci)))
			var inflight sync.WaitGroup
			for i := 1; ; i++ {
				intended := start.Add(time.Duration(i) * w.Pace)
				if !intended.Before(until) {
					break
				}
				if d := intended.Sub(clk.Now()); d > 0 {
					clk.Sleep(d)
				}
				target := s.Flat[rng.Intn(len(s.Flat))]
				inflight.Add(1)
				go func(target loid.LOID, intended time.Time) {
					defer inflight.Done()
					ctx, cancel := context.WithDeadline(context.Background(), intended.Add(w.Deadline))
					res, err := cli.CallCtx(ctx, target, "Work")
					cancel()
					lat := clk.Since(intended)
					failed := err != nil || res.Err() != nil
					mu.Lock()
					latencies = append(latencies, lat)
					if failed {
						failures++
					}
					mu.Unlock()
				}(target, intended)
			}
			inflight.Wait()
		}(ci, cli)
	}
	wg.Wait()
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	res := FaultResult{Calls: len(latencies), Failures: failures}
	if n := len(latencies); n > 0 {
		res.P50 = latencies[n/2]
		res.P99 = latencies[n*99/100]
	}
	return res
}
