package sim

import (
	"strconv"
	"testing"

	"repro/internal/wire"
)

// TestLiveLQLOverTheWire is the observability plane's acceptance
// check: on a three-host cluster with tracing on, the canonical
//
//	legion query "select loid, host, p999 from objects order by p999 desc limit 5"
//
// travels the real invocation path (Caller -> Magistrate "Query"
// dispatch -> Table wire marshal) and returns live rows whose
// exemplar TraceID resolves to recorded spans in the tracer.
func TestLiveLQLOverTheWire(t *testing.T) {
	s, err := Build(Config{
		HostsPerJurisdiction: 3,
		ObjectsPerClass:      6,
		Clients:              2,
		Obs:                  true,
		TraceSampleEvery:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Drive traffic so every object has latency stats and exemplars.
	for round := 0; round < 4; round++ {
		for i, l := range s.Flat {
			res, err := s.Clients[i%len(s.Clients)].Call(l, "Work")
			if err != nil || res.Code != wire.OK {
				t.Fatalf("Work(%v): %v / %+v", l, err, res)
			}
		}
	}

	mc, err := s.MagClient(0)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := mc.Query("select loid, host, p999 from objects order by p999 desc limit 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cols) != 3 || tab.Cols[0] != "loid" || tab.Cols[1] != "host" || tab.Cols[2] != "p999" {
		t.Fatalf("bad columns: %v", tab.Cols)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("want 5 rows from 6 live objects, got %d:\n%s", len(tab.Rows), tab.Format())
	}
	for _, row := range tab.Rows {
		if row[0].S == "" || row[1].S == "" {
			t.Fatalf("empty loid/host in live row: %+v", row)
		}
		if row[2].D <= 0 {
			t.Fatalf("p999 not live for %s: %v", row[0].S, row[2].D)
		}
	}
	// Descending order must hold over the wire roundtrip.
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i][2].D > tab.Rows[i-1][2].D {
			t.Fatalf("order by p999 desc violated:\n%s", tab.Format())
		}
	}

	// The exemplar trace attached to the slowest call must resolve to
	// real spans in the tracer (the /debug/traces contract).
	tab, err = mc.Query("select loid, trace from objects")
	if err != nil {
		t.Fatal(err)
	}
	resolved := 0
	for _, row := range tab.Rows {
		tr := row[1].S
		if tr == "" {
			continue
		}
		id, err := strconv.ParseUint(tr, 16, 64)
		if err != nil {
			t.Fatalf("exemplar trace %q is not 16-hex: %v", tr, err)
		}
		if spans := s.Tracer.Trace(id); len(spans) == 0 {
			t.Fatalf("exemplar trace %s for %s has no recorded spans", tr, row[0].S)
		}
		resolved++
	}
	if resolved == 0 {
		t.Fatalf("no object carried a resolvable exemplar trace:\n%s", tab.Format())
	}

	// The methods table aggregates the same traffic per method name.
	tab, err = mc.Query("select method, calls from methods where method = Work")
	if err != nil || len(tab.Rows) != 1 {
		t.Fatalf("methods table: %v\n%+v", err, tab)
	}
	if want := float64(4 * len(s.Flat)); tab.Rows[0][1].F < want {
		t.Fatalf("method Work calls = %v, want >= %v", tab.Rows[0][1].F, want)
	}
}
