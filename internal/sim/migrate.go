package sim

import (
	"context"
	"fmt"

	"repro/internal/loid"
	"repro/internal/magistrate"
	"repro/internal/sched"
)

// Live-migration helpers: drive MigrateObject on a jurisdiction's
// Magistrate, attach a rebalancer, and measure what the experiments
// assert — placement spread and the exactly-once incarnation
// invariant.

// MagClient returns a typed magistrate client for jurisdiction j,
// backed by the sim's boot caller.
func (s *Sim) MagClient(j int) (*magistrate.Client, error) {
	if j >= len(s.Sys.Jurisdictions) {
		return nil, fmt.Errorf("sim: no jurisdiction %d", j)
	}
	return magistrate.NewClient(s.Sys.BootClient(), s.Sys.Jurisdictions[j].Magistrate), nil
}

// MigrateObject live-migrates l to host h of jurisdiction j. The call
// returns when the binding has republished and the source holds a
// forwarding tombstone; concurrent callers never observe a failure.
func (s *Sim) MigrateObject(ctx context.Context, l loid.LOID, j, h int) error {
	mc, err := s.MagClient(j)
	if err != nil {
		return err
	}
	jur := s.Sys.Jurisdictions[j]
	if h >= len(jur.Hosts) {
		return fmt.Errorf("sim: jurisdiction %d has no host %d", j, h)
	}
	return mc.Migrate(ctx, l, jur.Hosts[h])
}

// NewRebalancer builds a rebalancer watching jurisdiction j. The
// caller tunes and starts it.
func (s *Sim) NewRebalancer(j int) (*sched.Rebalancer, error) {
	mc, err := s.MagClient(j)
	if err != nil {
		return nil, err
	}
	rb := sched.NewRebalancer(mc, s.Reg)
	rb.SetRecorder(s.Plane.Recorder())
	return rb, nil
}

// PlacementCounts returns, per host index of jurisdiction j, how many
// active objects the Magistrate places there — the spread the
// rebalancer is judged on.
func (s *Sim) PlacementCounts(j int) ([]int, error) {
	if j >= len(s.Sys.Jurisdictions) {
		return nil, fmt.Errorf("sim: no jurisdiction %d", j)
	}
	jur := s.Sys.Jurisdictions[j]
	counts := make([]int, len(jur.Hosts))
	for _, p := range jur.MagistrateImpl().Placements() {
		if !p.Active {
			continue
		}
		for i, hl := range jur.Hosts {
			if hl.SameObject(p.Host) {
				counts[i]++
				break
			}
		}
	}
	return counts, nil
}

// Incarnations counts the live copies of l across every node in the
// deployment. 1 is healthy; 0 means inert (or lost); 2+ is a
// split-brain bug.
func (s *Sim) Incarnations(l loid.LOID) int {
	return s.Sys.CountIncarnations(l)
}

// SkewPlacement deactivates every object of jurisdiction j and
// reactivates all of them pinned (via the host hint) onto host h —
// the worst-case starting point for a rebalancing experiment.
func (s *Sim) SkewPlacement(j, h int) error {
	mc, err := s.MagClient(j)
	if err != nil {
		return err
	}
	jur := s.Sys.Jurisdictions[j]
	if h >= len(jur.Hosts) {
		return fmt.Errorf("sim: jurisdiction %d has no host %d", j, h)
	}
	hint := jur.Hosts[h]
	for _, p := range jur.MagistrateImpl().Placements() {
		if p.Active && p.Host.SameObject(hint) {
			continue
		}
		if p.Active {
			if err := mc.Deactivate(p.Object); err != nil {
				return fmt.Errorf("sim: skew deactivate %v: %w", p.Object, err)
			}
		}
		if _, err := mc.Activate(p.Object, hint); err != nil {
			return fmt.Errorf("sim: skew activate %v on %v: %w", p.Object, hint, err)
		}
	}
	return nil
}
