// Command legion-bench regenerates the evaluation tables of
// EXPERIMENTS.md. The paper ("The Core Legion Object Model") publishes
// no measured tables; each experiment validates one of its
// claim-bearing sections instead — see DESIGN.md for the index.
//
// Usage:
//
//	legion-bench                 # run every experiment at full scale
//	legion-bench -quick          # fast pass (same configurations the tests use)
//	legion-bench -run E3,E9      # selected experiments
//	legion-bench -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-scale configurations")
	run := flag.String("run", "", "comma-separated experiment ids or names (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Name)
		}
		return
	}

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	var runners []experiments.Runner
	if *run == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			r := experiments.Find(strings.TrimSpace(id))
			if r == nil {
				fmt.Fprintf(os.Stderr, "legion-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, *r)
		}
	}

	failed := 0
	for _, r := range runners {
		start := time.Now()
		tbl, err := r.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (%s) failed: %v\n", r.ID, r.Name, err)
			failed++
			continue
		}
		fmt.Println(tbl.Format())
		fmt.Printf("(%s completed in %s)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		if !strings.HasPrefix(tbl.Finding, "holds") {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "legion-bench: %d experiment(s) did not uphold their claim\n", failed)
		os.Exit(1)
	}
}
