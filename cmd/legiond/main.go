// Command legiond runs Legion nodes over TCP.
//
// Core mode boots an entire Legion system — the core Abstract class
// objects, Binding Agents, Magistrates and Host Objects (§4.2.1) — and
// writes a contact sheet other processes use to join:
//
//	legiond -mode core -info /tmp/legion.json -jurisdictions 2 -hosts 2
//
// Host mode contributes one more Host Object to a running system, the
// way the paper has new hosts enter Legion (§2.3, §4.2.1):
//
//	legiond -mode host -info /tmp/legion.json -seq 100
//
// Both modes serve until killed. The demo implementations
// (demo.counter, demo.echo, demo.kv) are registered on every host.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/debughttp"
	"repro/internal/demo"
	"repro/internal/health"
	"repro/internal/implreg"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	mode := flag.String("mode", "core", "core | host")
	info := flag.String("info", "legion.json", "contact sheet path (written in core mode, read in host mode)")
	jurisdictions := flag.Int("jurisdictions", 1, "core: number of jurisdictions")
	hosts := flag.Int("hosts", 1, "core: hosts per jurisdiction")
	leaves := flag.Int("leaf-agents", 1, "core: leaf binding agents")
	fanout := flag.Int("agent-fanout", 0, "core: binding agent tree fanout (0 = flat)")
	seq := flag.Uint64("seq", 100, "host: unique host sequence number")
	magIdx := flag.Int("magistrate", 0, "host: index of the jurisdiction to join")
	vault := flag.String("vault", "", "core: directory for on-disk jurisdiction storage (default: in-memory)")
	dataDir := flag.String("data-dir", "", "core: durable home for the whole system — OPRs, checkpoints, and tables persist here across daemon restarts")
	ckptEvery := flag.Duration("checkpoint", 0, "checkpoint residents' state this often (0 disables; core and host modes)")
	loadReport := flag.Duration("load-report", 0, "report host load vectors to the Magistrate this often — feeds load-aware placement and /debug/placements (0 disables; core and host modes)")
	syncOPRs := flag.Bool("sync", false, "core: fsync every persistent-representation write")
	storeBackend := flag.String("store", "", "core: jurisdiction storage engine: mem | file | segment (default: mem, or file when -vault/-data-dir is set)")
	debugAddr := flag.String("debug-addr", "", "serve the observability surface (metrics, traces, health, pprof) on this address; empty disables it")
	traceSample := flag.Int("trace-sample", trace.DefaultSampleEvery, "trace one invocation in N (1 = every invocation); effective with -debug-addr")
	flag.Parse()

	impls := implreg.NewRegistry()
	demo.RegisterAll(impls)

	switch *mode {
	case "core":
		opts := core.Options{
			Transport:            &transport.TCP{},
			Registry:             metrics.NewRegistry(),
			Impls:                impls,
			Jurisdictions:        *jurisdictions,
			HostsPerJurisdiction: *hosts,
			LeafAgents:           *leaves,
			AgentFanout:          *fanout,
			VaultDir:             *vault,
			DataDir:              *dataDir,
			SyncOPRs:             *syncOPRs,
			StoreBackend:         *storeBackend,
			CheckpointEvery:      *ckptEvery,
			LoadReportEvery:      *loadReport,
		}
		if *dataDir != "" && *ckptEvery == 0 {
			// A durable system should checkpoint by default; otherwise a
			// restart only preserves deactivated objects.
			opts.CheckpointEvery = time.Second
		}
		if *debugAddr != "" {
			// The debug surface implies observability: install a tracer,
			// a shared health tracker, and the cluster observability
			// plane so it has something to show.
			opts.Tracer = trace.New(trace.Config{SampleEvery: *traceSample})
			opts.Health = health.NewTracker(health.Config{}, opts.Registry)
			opts.Obs = obs.NewPlane(obs.Config{
				Host:     "core",
				Registry: opts.Registry,
				Tracer:   opts.Tracer,
			})
			if opts.LoadReportEvery == 0 {
				// /debug/placements is dead air without load reports.
				opts.LoadReportEvery = time.Second
			}
		}
		sys, err := core.Boot(opts)
		if err != nil {
			log.Fatalf("legiond: boot: %v", err)
		}
		defer sys.Close()
		if *debugAddr != "" {
			bound, stopDebug, err := debughttp.Serve(*debugAddr, debughttp.Options{
				Registry:   opts.Registry,
				Tracer:     opts.Tracer,
				Health:     opts.Health,
				Placements: placementsView(sys),
				Obs:        opts.Obs,
			})
			if err != nil {
				log.Fatalf("legiond: debug listener: %v", err)
			}
			defer stopDebug()
			fmt.Printf("legiond: debug surface at http://%s/ (tracing 1 in %d)\n", bound, *traceSample)
		}
		if err := sys.WriteNetInfo(*info); err != nil {
			log.Fatalf("legiond: write contact sheet: %v", err)
		}
		ni, _ := sys.NetInfo()
		fmt.Printf("legiond: core up — LegionClass at %s, %d jurisdiction(s), %d agent(s)\n",
			ni.LegionClass, len(sys.Jurisdictions), len(sys.Agents))
		fmt.Printf("legiond: contact sheet written to %s\n", *info)
		if *dataDir != "" {
			fmt.Printf("legiond: durable state under %s (checkpoint every %s)\n", *dataDir, opts.CheckpointEvery)
		}
		waitForSignal()
		if *dataDir != "" {
			// A final checkpoint round plus the table snapshot makes the
			// shutdown lossless; the next `legiond -data-dir` continues
			// where this one stopped.
			if n, err := sys.CheckpointNow(); err != nil {
				log.Printf("legiond: final checkpoint (%d saved): %v", n, err)
			}
			if err := sys.SaveSnapshot(); err != nil {
				log.Printf("legiond: save snapshot: %v", err)
			} else {
				fmt.Printf("legiond: state saved to %s\n", *dataDir)
			}
		}
	case "host":
		ni, err := core.LoadNetInfo(*info)
		if err != nil {
			log.Fatalf("legiond: %v", err)
		}
		remote, err := core.Attach(ni)
		if err != nil {
			log.Fatalf("legiond: attach: %v", err)
		}
		remote.CheckpointEvery = *ckptEvery
		remote.LoadReportEvery = *loadReport
		if *debugAddr != "" {
			// Host processes get the same local observability a core
			// process does: a sampling tracer plus a plane whose metrics
			// and flight-recorder events also piggyback back to the
			// Magistrate on load reports (cluster-wide LQL sees them).
			remote.Tracer = trace.New(trace.Config{SampleEvery: *traceSample})
			remote.Obs = obs.NewPlane(obs.Config{
				Host:     fmt.Sprintf("host/%d", *seq),
				Registry: remote.Reg,
				Tracer:   remote.Tracer,
			})
			if remote.LoadReportEvery == 0 {
				// Telemetry rides the load report; give it a carrier.
				remote.LoadReportEvery = time.Second
			}
			bound, stopDebug, err := debughttp.Serve(*debugAddr, debughttp.Options{
				Registry: remote.Reg,
				Tracer:   remote.Tracer,
				Obs:      remote.Obs,
			})
			if err != nil {
				log.Fatalf("legiond: debug listener: %v", err)
			}
			defer stopDebug()
			fmt.Printf("legiond: debug surface at http://%s/ (tracing 1 in %d)\n", bound, *traceSample)
		}
		defer remote.Close()
		joined, err := remote.JoinHost(*seq, impls, *magIdx)
		if err != nil {
			log.Fatalf("legiond: join: %v", err)
		}
		fmt.Printf("legiond: host %v joined jurisdiction %d\n", joined.LOID, *magIdx)
		waitForSignal()
	default:
		fmt.Fprintf(os.Stderr, "legiond: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// placementsView adapts the in-process Magistrates' load and placement
// tables into the debug surface's transport-free row types.
func placementsView(sys *core.System) func() []debughttp.PlacementView {
	return func() []debughttp.PlacementView {
		views := make([]debughttp.PlacementView, 0, len(sys.Jurisdictions))
		for _, j := range sys.Jurisdictions {
			v := debughttp.PlacementView{Jurisdiction: j.Magistrate.String()}
			for _, hl := range j.MagistrateImpl().Loads() {
				v.Hosts = append(v.Hosts, debughttp.PlacementHost{
					Host:         hl.Host.String(),
					Residents:    int(hl.Load.Residents),
					MailboxDepth: int(hl.Load.MailboxDepth),
					DispatchRate: float64(hl.Load.DispatchRate),
					CkptDirty:    int(hl.Load.CkptDirty),
					Score:        hl.Load.Score(),
					Age:          hl.Age,
				})
			}
			for _, p := range j.MagistrateImpl().Placements() {
				host := ""
				if p.Active {
					host = p.Host.String()
				}
				v.Objects = append(v.Objects, debughttp.PlacementObject{
					Object: p.Object.String(),
					Impl:   p.Impl,
					Host:   host,
					Active: p.Active,
				})
			}
			views = append(views, v)
		}
		return views
	}
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	fmt.Println("legiond: shutting down")
}
