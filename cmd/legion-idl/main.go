// Command legion-idl is the Legion-aware compiler's front half (§4.1):
// it parses Legion IDL and either validates/pretty-prints it or
// generates Go client stubs and server bindings.
//
//	legion-idl check file.idl           # parse and canonicalize
//	legion-idl gen -pkg myapp file.idl  # emit Go stubs to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/idl"
	"repro/internal/idlgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	pkg := fs.String("pkg", "main", "gen: package name for generated code")
	out := fs.String("o", "", "gen: output file (default stdout)")
	fs.Parse(os.Args[2:])
	if fs.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	interfaces, err := idl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	switch cmd {
	case "check":
		for _, in := range interfaces {
			fmt.Print(in.Format())
		}
	case "gen":
		var buf []byte
		for _, in := range interfaces {
			code, err := idlgen.Generate(*pkg, in)
			if err != nil {
				fatal(err)
			}
			buf = append(buf, code...)
		}
		if *out == "" {
			os.Stdout.Write(buf)
			return
		}
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: legion-idl check FILE.idl | legion-idl gen [-pkg NAME] [-o FILE] FILE.idl")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "legion-idl: %v\n", err)
	os.Exit(1)
}
