package main

import (
	"strings"
	"testing"

	"repro/internal/demo"
	"repro/internal/loid"
	"repro/internal/wire"
)

func TestParseArgs(t *testing.T) {
	got, err := parseArgs([]string{
		"plain", "string:hello", "int64:-5", "uint64:7", "bool:true", "bytes:raw", "loid:L256.1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("parsed %d args", len(got))
	}
	if wire.AsString(got[0]) != "plain" || wire.AsString(got[1]) != "hello" {
		t.Error("string args wrong")
	}
	if v, _ := wire.AsInt64(got[2]); v != -5 {
		t.Error("int64 arg wrong")
	}
	if v, _ := wire.AsUint64(got[3]); v != 7 {
		t.Error("uint64 arg wrong")
	}
	if v, _ := wire.AsBool(got[4]); !v {
		t.Error("bool arg wrong")
	}
	if string(got[5]) != "raw" {
		t.Error("bytes arg wrong")
	}
	if l, _ := wire.AsLOID(got[6]); !l.SameObject(loid.NewNoKey(256, 1)) {
		t.Error("loid arg wrong")
	}
}

func TestParseArgsErrors(t *testing.T) {
	for _, bad := range []string{"int64:x", "uint64:-1", "loid:zzz", "float:1.5"} {
		if _, err := parseArgs([]string{bad}); err == nil {
			t.Errorf("parseArgs(%q) succeeded", bad)
		}
	}
}

func TestRenderResult(t *testing.T) {
	if s := renderResult(wire.Uint64(42)); !strings.Contains(s, "42 (uint64)") {
		t.Errorf("uint64 render = %q", s)
	}
	if s := renderResult(wire.Bool(true)); !strings.Contains(s, "true (bool)") {
		t.Errorf("bool render = %q", s)
	}
	if s := renderResult(wire.LOID(loid.NewNoKey(5, 6))); !strings.Contains(s, "(loid)") {
		t.Errorf("loid render = %q", s)
	}
	if s := renderResult([]byte("hello")); !strings.Contains(s, `"hello"`) {
		t.Errorf("bytes render = %q", s)
	}
}

func TestImplInterface(t *testing.T) {
	if ifc := implInterface(demo.CounterImpl); ifc == nil || !ifc.Has("Add") {
		t.Error("counter interface missing")
	}
	if ifc := implInterface(demo.KVImpl); ifc == nil || !ifc.Has("Put") {
		t.Error("kv interface missing")
	}
	if implInterface("custom.impl") != nil {
		t.Error("unknown impl returned an interface")
	}
}
