// Command legion is the command-line client for a running Legion
// system (started with legiond). It exercises the public object model:
// deriving classes, creating instances, invoking methods, inspecting
// interfaces, and driving the Magistrate lifecycle.
//
//	legion -info /tmp/legion.json derive Counter demo.counter
//	legion -info /tmp/legion.json create L256.0
//	legion -info /tmp/legion.json call L256.1 Add int64:5
//	legion -info /tmp/legion.json interface L256.1
//	legion -info /tmp/legion.json deactivate 0 L256.1
//	legion -info /tmp/legion.json classinfo L256.0
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/class"
	"repro/internal/core"
	"repro/internal/demo"
	"repro/internal/idl"
	"repro/internal/loid"
	"repro/internal/magistrate"
	"repro/internal/rt"
	"repro/internal/sched"
	"repro/internal/wire"
)

func main() {
	info := flag.String("info", "legion.json", "contact sheet path")
	selfID := flag.Uint64("as", 7777, "client identity sequence number")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	ni, err := core.LoadNetInfo(*info)
	if err != nil {
		log.Fatalf("legion: %v", err)
	}
	remote, err := core.Attach(ni)
	if err != nil {
		log.Fatalf("legion: %v", err)
	}
	defer remote.Close()
	self := loid.New(300, *selfID, loid.DeriveKey(fmt.Sprintf("cli/%d", *selfID)))
	cli, err := remote.NewClient(self)
	if err != nil {
		log.Fatalf("legion: %v", err)
	}

	if err := dispatch(ni, cli, args); err != nil {
		log.Fatalf("legion: %v", err)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: legion [-info FILE] COMMAND ...

commands:
  ping LOID                       liveness probe
  iam LOID                        ask the object to identify itself
  interface LOID                  print the object's interface (IDL)
  call LOID METHOD [type:val...]  invoke a method (types: string,int64,uint64,bool,bytes,loid)
  derive NAME IMPL                derive a class from LegionObject
  classinfo LOID                  summarize a class object
  create CLASS-LOID               create an instance of a class
  delete CLASS-LOID LOID          delete an instance through its class
  clone CLASS-LOID                clone a hot class (§5.2.2)
  activate MAG-IDX LOID           activate through jurisdiction MAG-IDX
  deactivate MAG-IDX LOID         deactivate through jurisdiction MAG-IDX
  move MAG-IDX LOID DST-MAG-IDX   migrate between jurisdictions
  magistrate MAG-IDX              list a jurisdiction's objects and hosts
  migrate MAG-IDX LOID HOST-LOID  live-migrate to another host, zero failed calls
  loads MAG-IDX                   print the jurisdiction's host load vectors
  rebalance MAG-IDX [ROUNDS]      run the load rebalancer (default: until interrupted)
  query [MAG-IDX] "LQL"           run an LQL query on the observability plane, e.g.
                                  query "select loid, host, p999 from objects order by p999 desc limit 5"
  top [MAG-IDX] [ITERATIONS]      live cluster view: hosts, hottest objects, recent events
                                  (refreshes every second; default: until interrupted)
`)
}

func dispatch(ni *core.NetInfo, cli *rt.Caller, args []string) error {
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "ping":
		l, err := parseLOID(rest, 0)
		if err != nil {
			return err
		}
		res, err := cli.Call(l, "Ping")
		if err != nil {
			return err
		}
		if err := res.Err(); err != nil {
			return err
		}
		fmt.Printf("%v is alive\n", l)
		return nil
	case "iam":
		l, err := parseLOID(rest, 0)
		if err != nil {
			return err
		}
		res, err := cli.Call(l, "Iam")
		if err != nil {
			return err
		}
		raw, err := res.Result(0)
		if err != nil {
			return err
		}
		id, err := wire.AsLOID(raw)
		if err != nil {
			return err
		}
		fmt.Printf("%v says: I am %v\n", l, id)
		return nil
	case "interface":
		l, err := parseLOID(rest, 0)
		if err != nil {
			return err
		}
		res, err := cli.Call(l, "GetInterface")
		if err != nil {
			return err
		}
		raw, err := res.Result(0)
		if err != nil {
			return err
		}
		ifc, _, err := idl.Unmarshal(raw)
		if err != nil {
			return err
		}
		fmt.Print(ifc.Format())
		return nil
	case "call":
		if len(rest) < 2 {
			return fmt.Errorf("call needs LOID and METHOD")
		}
		l, err := parseLOID(rest, 0)
		if err != nil {
			return err
		}
		callArgs, err := parseArgs(rest[2:])
		if err != nil {
			return err
		}
		res, err := cli.Call(l, rest[1], callArgs...)
		if err != nil {
			return err
		}
		if res.Code != wire.OK {
			return fmt.Errorf("%s: %s", res.Code, res.ErrText)
		}
		for i, out := range res.Results {
			fmt.Printf("result[%d] = %s\n", i, renderResult(out))
		}
		if len(res.Results) == 0 {
			fmt.Println("ok")
		}
		return nil
	case "derive":
		if len(rest) < 2 {
			return fmt.Errorf("derive needs NAME and IMPL")
		}
		ifc := implInterface(rest[1])
		lo := class.NewClient(cli, loid.LegionObject)
		clsL, _, err := lo.Derive(rest[0], rest[1], ifc, 0, loid.Nil)
		if err != nil {
			return err
		}
		fmt.Printf("derived class %s = %v\n", rest[0], clsL)
		return nil
	case "classinfo":
		l, err := parseLOID(rest, 0)
		if err != nil {
			return err
		}
		info, err := class.NewClient(cli, l).Info()
		if err != nil {
			return err
		}
		fmt.Printf("class %s (%v): super=%v flags=%s instances=%d subclasses=%d\n",
			info.Name, l, info.Super, info.Flags, info.Instances, info.Subclasses)
		return nil
	case "create":
		l, err := parseLOID(rest, 0)
		if err != nil {
			return err
		}
		obj, b, err := class.NewClient(cli, l).Create(nil, loid.Nil, loid.Nil)
		if err != nil {
			return err
		}
		fmt.Printf("created %v at %v\n", obj, b.Address)
		return nil
	case "delete":
		cls, err := parseLOID(rest, 0)
		if err != nil {
			return err
		}
		obj, err := parseLOID(rest, 1)
		if err != nil {
			return err
		}
		if err := class.NewClient(cli, cls).Delete(obj); err != nil {
			return err
		}
		fmt.Printf("deleted %v\n", obj)
		return nil
	case "clone":
		l, err := parseLOID(rest, 0)
		if err != nil {
			return err
		}
		cloneL, _, err := class.NewClient(cli, l).Clone(loid.Nil)
		if err != nil {
			return err
		}
		fmt.Printf("cloned %v -> %v\n", l, cloneL)
		return nil
	case "activate", "deactivate":
		mc, err := magClient(ni, cli, rest, 0)
		if err != nil {
			return err
		}
		obj, err := parseLOID(rest, 1)
		if err != nil {
			return err
		}
		if cmd == "activate" {
			b, err := mc.Activate(obj, loid.Nil)
			if err != nil {
				return err
			}
			fmt.Printf("activated %v at %v\n", obj, b.Address)
			return nil
		}
		if err := mc.Deactivate(obj); err != nil {
			return err
		}
		fmt.Printf("deactivated %v\n", obj)
		return nil
	case "move":
		mc, err := magClient(ni, cli, rest, 0)
		if err != nil {
			return err
		}
		obj, err := parseLOID(rest, 1)
		if err != nil {
			return err
		}
		if len(rest) < 3 {
			return fmt.Errorf("move needs DST-MAG-IDX")
		}
		dst, err := magClient(ni, cli, rest, 2)
		if err != nil {
			return err
		}
		if err := mc.Move(obj, dst.Magistrate()); err != nil {
			return err
		}
		fmt.Printf("moved %v to jurisdiction %s\n", obj, rest[2])
		return nil
	case "magistrate":
		mc, err := magClient(ni, cli, rest, 0)
		if err != nil {
			return err
		}
		hosts, err := mc.ListHosts()
		if err != nil {
			return err
		}
		objs, err := mc.ListObjects()
		if err != nil {
			return err
		}
		fmt.Printf("magistrate %v\n  hosts:", mc.Magistrate())
		for _, h := range hosts {
			fmt.Printf(" %v", h)
		}
		fmt.Printf("\n  objects:")
		for _, o := range objs {
			fmt.Printf(" %v", o)
		}
		fmt.Println()
		return nil
	case "migrate":
		mc, err := magClient(ni, cli, rest, 0)
		if err != nil {
			return err
		}
		obj, err := parseLOID(rest, 1)
		if err != nil {
			return err
		}
		h, err := parseLOID(rest, 2)
		if err != nil {
			return err
		}
		if err := mc.Migrate(context.Background(), obj, h); err != nil {
			return err
		}
		fmt.Printf("migrated %v to %v\n", obj, h)
		return nil
	case "loads":
		mc, err := magClient(ni, cli, rest, 0)
		if err != nil {
			return err
		}
		loads, err := mc.GetLoads()
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %9s %7s %9s %7s %8s\n", "host", "residents", "depth", "disp/s", "score", "report")
		for _, hl := range loads {
			age := "never"
			if hl.Age >= 0 {
				age = hl.Age.Truncate(time.Millisecond).String() + " ago"
			}
			fmt.Printf("%-16v %9d %7d %9d %7.2f %8s\n", hl.Host,
				hl.Load.Residents, hl.Load.MailboxDepth, hl.Load.DispatchRate,
				hl.Load.Score(), age)
		}
		return nil
	case "rebalance":
		mc, err := magClient(ni, cli, rest, 0)
		if err != nil {
			return err
		}
		rounds := 0 // 0 = run forever
		if len(rest) > 1 {
			if rounds, err = strconv.Atoi(rest[1]); err != nil || rounds < 1 {
				return fmt.Errorf("bad round count %q", rest[1])
			}
		}
		rb := sched.NewRebalancer(mc, nil)
		fmt.Printf("rebalancing jurisdiction %v (hot > %.1fx mean for %d rounds moves <= %d objects/round)\n",
			mc.Magistrate(), rb.HotFactor, rb.SustainRounds, rb.MaxMovesPerRound)
		for i := 0; rounds == 0 || i < rounds; i++ {
			moved, err := rb.RoundNow(context.Background())
			if err != nil {
				return err
			}
			if moved > 0 {
				fmt.Printf("round %d: moved %d object(s)\n", i+1, moved)
			}
			if rounds == 0 || i+1 < rounds {
				time.Sleep(rb.Interval)
			}
		}
		return nil
	case "query":
		if len(rest) == 0 {
			return fmt.Errorf(`query needs an LQL string, e.g. query "select * from hosts"`)
		}
		idx, q := "0", rest[0]
		if len(rest) > 1 {
			idx, q = rest[0], rest[1]
		}
		mc, err := magClientAt(ni, cli, idx)
		if err != nil {
			return err
		}
		t, err := mc.Query(q)
		if err != nil {
			return err
		}
		fmt.Print(t.Format())
		return nil
	case "top":
		idx := "0"
		if len(rest) > 0 {
			idx = rest[0]
		}
		iters := 0 // 0 = refresh until interrupted
		if len(rest) > 1 {
			var err error
			if iters, err = strconv.Atoi(rest[1]); err != nil || iters < 1 {
				return fmt.Errorf("bad iteration count %q", rest[1])
			}
		}
		mc, err := magClientAt(ni, cli, idx)
		if err != nil {
			return err
		}
		return runTop(mc, iters)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// runTop renders a refreshing cluster view off the magistrate's
// observability plane: host load, the hottest objects, and the tail of
// the flight recorder. iters bounds the refresh count (0 = forever).
func runTop(mc *magistrate.Client, iters int) error {
	for i := 0; iters == 0 || i < iters; i++ {
		hosts, err := mc.Query("select * from hosts order by score desc")
		if err != nil {
			return err
		}
		objs, err := mc.Query("select loid, impl, host, calls, p99, p999 from objects order by calls desc limit 10")
		if err != nil {
			return err
		}
		events, err := mc.Query("select at, host, kind, object, detail from events order by at desc limit 8")
		if err != nil {
			return err
		}
		if i > 0 || iters != 1 {
			fmt.Print("\x1b[H\x1b[2J") // home + clear; a plain dump when run once
		}
		fmt.Printf("legion top — magistrate %v (refresh %d)\n\nHOSTS\n%s\nHOT OBJECTS\n%s\nRECENT EVENTS\n%s",
			mc.Magistrate(), i+1, hosts.Format(), objs.Format(), events.Format())
		if iters == 0 || i+1 < iters {
			time.Sleep(time.Second)
		}
	}
	return nil
}

func magClient(ni *core.NetInfo, cli *rt.Caller, rest []string, idx int) (*magistrate.Client, error) {
	if idx >= len(rest) {
		return nil, fmt.Errorf("missing magistrate index")
	}
	return magClientAt(ni, cli, rest[idx])
}

func magClientAt(ni *core.NetInfo, cli *rt.Caller, idxStr string) (*magistrate.Client, error) {
	i, err := strconv.Atoi(idxStr)
	if err != nil || i < 0 || i >= len(ni.Magistrates) {
		return nil, fmt.Errorf("bad magistrate index %q (have %d)", idxStr, len(ni.Magistrates))
	}
	l, err := loid.Parse(ni.Magistrates[i].LOID)
	if err != nil {
		return nil, err
	}
	return magistrate.NewClient(cli, l), nil
}

func parseLOID(rest []string, idx int) (loid.LOID, error) {
	if idx >= len(rest) {
		return loid.Nil, fmt.Errorf("missing LOID argument")
	}
	return loid.Parse(rest[idx])
}

// parseArgs converts "type:value" strings to wire arguments.
func parseArgs(ss []string) ([][]byte, error) {
	var out [][]byte
	for _, s := range ss {
		ty, val, found := strings.Cut(s, ":")
		if !found {
			// Untyped arguments are strings.
			out = append(out, wire.String(s))
			continue
		}
		switch ty {
		case "string":
			out = append(out, wire.String(val))
		case "int64":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad int64 %q: %w", val, err)
			}
			out = append(out, wire.Int64(v))
		case "uint64":
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad uint64 %q: %w", val, err)
			}
			out = append(out, wire.Uint64(v))
		case "bool":
			out = append(out, wire.Bool(val == "true"))
		case "bytes":
			out = append(out, []byte(val))
		case "loid":
			l, err := loid.Parse(val)
			if err != nil {
				return nil, err
			}
			out = append(out, wire.LOID(l))
		default:
			return nil, fmt.Errorf("unknown argument type %q", ty)
		}
	}
	return out, nil
}

// renderResult prints a result argument with best-effort decoding.
func renderResult(b []byte) string {
	if len(b) == 8 {
		if v, err := wire.AsUint64(b); err == nil {
			return fmt.Sprintf("%d (uint64) / %d (int64) / %q", v, int64(v), b)
		}
	}
	if len(b) == 1 && b[0] <= 1 {
		return fmt.Sprintf("%v (bool)", b[0] == 1)
	}
	if l, err := wire.AsLOID(b); err == nil {
		return fmt.Sprintf("%v (loid)", l)
	}
	return fmt.Sprintf("%q", b)
}

// implInterface returns the interface matching a known demo impl, or
// nil for unknown implementations (inherit-only derive).
func implInterface(impl string) *idl.Interface {
	switch impl {
	case demo.CounterImpl:
		return demo.CounterInterface()
	case demo.EchoImpl:
		return demo.EchoInterface()
	case demo.KVImpl:
		return demo.KVInterface()
	default:
		return nil
	}
}
