// benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so benchmark runs can be committed and diffed
// (see `make bench`). Only benchmark result lines are parsed; all
// other output passes through to stderr untouched, keeping failures
// visible when the bench run is piped.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Doc is the whole report.
type Doc struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	doc := Doc{
		Date:      time.Now().UTC().Format("2006-01-02T15:04:05Z"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseLine(line); ok {
			doc.Benchmarks = append(doc.Benchmarks, r)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine matches lines of the form
//
//	BenchmarkName-8   1234   5678 ns/op   90 B/op   1 allocs/op
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			r.BPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	return r, true
}
