# Developer entry points. `make check` is the pre-commit gate: it runs
# exactly what the repo treats as tier-1 (build + tests) plus vet, and
# `make race` covers the packages with lock-free fast paths.

GO ?= go

.PHONY: all build test race bench bench-invoke fuzz-smoke vet check experiments crash-test migrate-test obs-test store-test des-test

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The fast-path packages (sharded binding cache, lock-slimmed rt,
# pooled transports) plus the durability layer (checkpoint loop vs
# dispatch vs failover) are the ones worth paying the race detector for.
race:
	$(GO) test -race ./internal/binding ./internal/rt ./internal/transport \
		./internal/persist ./internal/magistrate ./internal/sched ./internal/host \
		./internal/obs ./internal/metrics ./internal/debughttp

# Crash-recovery smoke: the chaos/recovery tests and a quick E18 run
# (host failover, churn with checkpoints, full -data-dir restart).
crash-test:
	$(GO) test -race ./internal/persist ./internal/magistrate
	$(GO) test -race -run 'TestCrash|TestRestart|TestHealthDetector' ./internal/core ./internal/sim
	$(GO) run ./cmd/legion-bench -quick -run E18

# Live-migration gauntlet: the FIFO storm (both transports, leak
# tracking on), the magistrate migration/rebalance tests, and a quick
# E19 run (crash injection at every phase boundary + rebalancer).
migrate-test:
	$(GO) test -race -run 'TestMigrationStormFIFO|TestStaleBindingRefreshAfterMigration' ./internal/rt
	$(GO) test -race -tags buftrack -run TestMigrationStormFIFO ./internal/rt
	$(GO) test -race ./internal/sched ./internal/host ./internal/magistrate
	$(GO) run ./cmd/legion-bench -quick -run E19

# Observability plane: the lock-free flight recorder and exemplar
# histograms under the race detector, the debug surface scraped during
# live churn, the wire'd LQL path, and a quick E20 run (five canned
# operator queries against a cluster under migration).
obs-test:
	$(GO) test -race ./internal/obs ./internal/metrics ./internal/debughttp
	$(GO) test -race -run 'TestLiveLQLOverTheWire' ./internal/sim
	$(GO) run ./cmd/legion-bench -quick -run E20

# All microbenchmarks, with allocation counts. The invocation fast
# path (E1 binding + the ParallelInvoke suite) is additionally written
# to BENCH_<date>.json — commit that file with perf-sensitive changes
# so regressions are diffable in review.
BENCH_JSON = BENCH_$(shell date -u +%Y-%m-%d).json
bench:
	$(GO) test -run xxx -bench 'BenchmarkParallelInvoke|BenchmarkE1BindingPath|BenchmarkCheckpointStorm' \
		-benchmem -benchtime=2s . | $(GO) run ./cmd/benchjson > $(BENCH_JSON)
	@echo wrote $(BENCH_JSON)
	$(GO) test -run xxx -bench . -benchmem -benchtime=2s .

# Just the invocation fast path (the §5.2.1 "common case" pipeline).
bench-invoke:
	$(GO) test -run xxx -bench 'BenchmarkParallelInvoke|BenchmarkE1BindingPath' -benchmem -benchtime=2s .

# Storage engine gauntlet: the fault-injected recovery matrix (torn
# writes, fsync errors, crash tails, mid-compaction crashes) and the
# backend conformance suite under the race detector, then the chaos
# tests driven over the segment backend, and a quick E21 run.
store-test:
	$(GO) test -race -run 'TestSegment|TestBackendConformance|TestFileStoreDirSync' ./internal/persist
	$(GO) test -race -run 'TestCrash|TestRestart' ./internal/core ./internal/sim
	$(GO) run ./cmd/legion-bench -quick -run E21

# Discrete-event scale harness: the clock seam and virtual clock under
# the race detector, the deterministic-replay guarantee (same seed →
# byte-identical event logs), and a quick E22 run (10^4-object knee
# ladders). The full 10^6-object sweep is `legion-bench -run E22`.
des-test:
	$(GO) test -race ./internal/clock ./internal/des
	$(GO) test -race -run 'TestReplayDeterminism|TestBreakerVirtualClock' ./internal/des ./internal/health
	$(GO) run ./cmd/legion-bench -quick -run E22

# Short fuzz pass over the wire decoder (v2/v3/v4 frames) and the
# segment-record/snapshot codec: enough to catch a freshly introduced
# parser panic without tying up CI.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzParseFrame -fuzztime 15s ./internal/wire
	$(GO) test -run xxx -fuzz FuzzSegmentRecord -fuzztime 15s ./internal/persist

vet:
	$(GO) vet ./...

check: build vet test race

# The EXPERIMENTS.md harness (full scale; add ARGS=-quick for a fast pass).
experiments:
	$(GO) run ./cmd/legion-bench $(ARGS)
